"""The NIC-based barrier firmware extension (Sections 4.2--5.2).

This is the paper's contribution: barrier logic executed *on the NIC* by
the SDMA and RDMA state machines, so that "as soon as a NIC receives a
barrier message, the message to the next process can be sent directly"
without a round trip through the host.

The engine's methods are generators executed *inside* the calling state
machine's process, so every action is charged against the shared NIC
processor at the LANai cost model's rates:

* :meth:`initiate`, :meth:`sdma_work` run in the SDMA machine ("When the
  SDMA state machine receives the barrier send token from the host...").
* :meth:`on_barrier_packet`, :meth:`complete` run in the RDMA machine
  ("When a barrier packet is received, the RDMA state machine can access
  the state of the barrier by simply dereferencing the pointer").
* :meth:`on_reject` runs in the RECV machine (closed-port recovery,
  Section 3.2).

Algorithms:

**PE (pairwise exchange)** -- walk ``token.steps``; each step sends to its
peer and/or awaits that peer's message.  The *unexpected-barrier-message
record* (one bit per (connection, source port)) absorbs messages that
arrive before we are ready for them; after preparing each send the engine
checks the record so an already-received reply advances the barrier
without waiting (Section 5.2's numbered 1--5 procedure).

**GB (gather and broadcast)** -- non-roots collect gathers from all
children, send one gather up, and await the broadcast; the root, once all
gathers are in, *completes first* and then broadcasts to each child by
repeatedly re-queueing the send token ("Once the SDMA state machine has
prepared the packet to be transmitted, the send token is updated to be
sent to the next child, and it is re-queued").
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Tuple

from repro.gm.constants import BarrierReliability
from repro.gm.events import BarrierCompletedEvent, PeerFailureEvent
from repro.gm.port import NicPort
from repro.gm.tokens import BarrierSendToken, Endpoint
from repro.network.packet import Packet, PacketType
from repro.nic.mcp.connection import BarrierUnacked, SentEntry

if TYPE_CHECKING:  # pragma: no cover
    from repro.nic.nic import Nic

#: Wire payload of a barrier packet (barrier-instance id + flags).
BARRIER_PAYLOAD_BYTES = 8
#: Size of the completion notification DMAed to the host.
COMPLETION_DMA_BYTES = 16


class NicBarrierEngine:
    """Barrier firmware state shared by the MCP machines of one NIC."""

    def __init__(self, nic: "Nic") -> None:
        self.nic = nic
        #: Recently initiated tokens per port, for REJECT-triggered resends
        #: that arrive after the local barrier already completed (a GB
        #: broadcast to a slow-opening child).
        self._recent_tokens: Dict[int, Deque[BarrierSendToken]] = {}
        #: Statistics.
        self.barriers_initiated = 0
        self.unexpected_recorded = 0
        self.rejects_sent = 0
        self.resends = 0
        metrics = nic.sim.metrics
        prefix = f"nic{nic.node_id}.barrier"
        metrics.observe(f"{prefix}.initiated", lambda: self.barriers_initiated)
        metrics.observe(f"{prefix}.unexpected", lambda: self.unexpected_recorded)
        metrics.observe(f"{prefix}.rejects", lambda: self.rejects_sent)
        metrics.observe(f"{prefix}.resends", lambda: self.resends)
        #: Host-queue-to-NIC-complete latency of each finished barrier.
        self._latency_hist = metrics.histogram(f"{prefix}.latency_us")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def cpu(self, operation: str):
        """Charge one firmware operation against the NIC processor."""
        yield from self.nic.cpu_time(operation)

    def trace(self, label: str, **payload) -> None:
        """Record a trace event if tracing is enabled."""
        if self.nic.tracer is not None:
            self.nic.tracer.record(
                f"nic{self.nic.node_id}", f"barrier.{label}", **payload
            )

    def _token_live(self, port: NicPort, token: BarrierSendToken) -> bool:
        return port.is_open and port.barrier_send_token is token

    def _remember(self, port_id: int, token: BarrierSendToken) -> None:
        ring = self._recent_tokens.get(port_id)
        if ring is None:
            ring = deque(maxlen=4)
            self._recent_tokens[port_id] = ring
        ring.append(token)

    # ------------------------------------------------------------------
    # SDMA-side entry points
    # ------------------------------------------------------------------
    def initiate(self, port_id: int, token: BarrierSendToken):
        """Process a barrier send token from the host (SDMA context)."""
        nic = self.nic
        yield from self.cpu(
            "gb_initiate" if token.algorithm == "gb" else "barrier_initiate"
        )
        port = nic.port(port_id)
        if not port.is_open:
            return  # the process died between queueing and detection
        if port.barrier_send_token is not None:
            raise RuntimeError(
                f"port {port_id} on node {nic.node_id} initiated a barrier "
                "while one is already in flight (one barrier per port)"
            )
        token.owner_generation = port.generation
        port.barrier_send_token = token
        self._remember(port_id, token)
        self.barriers_initiated += 1
        self.trace(
            "initiate", port=port_id, alg=token.algorithm,
            seq=token.barrier_seq, ctx=token.ctx,
        )
        # Phase-span begin records ("<alg>.begin"/"<alg>.end" pairs are
        # auto-discovered by Tracer.to_chrome_trace).
        self.trace(
            f"{token.algorithm}.begin", port=port_id, key=token.barrier_seq,
            ctx=token.ctx,
        )
        if token.algorithm == "gb":
            self.trace(
                "gb.gather.begin", port=port_id, key=token.barrier_seq,
                ctx=token.ctx,
            )

        if token.algorithm == "pe":
            yield from self._pe_loop(port, token)
        else:
            yield from self._gb_initiate(port, token)

    def sdma_work(self, item: tuple):
        """Dispatch barrier work items the engine queued to the SDMA inbox."""
        kind = item[0]
        if kind == "barrier_send_pe":
            _, port_id, token = item
            port = self.nic.port(port_id)
            if self._token_live(port, token):
                yield from self._pe_loop(port, token)
        elif kind == "barrier_send_gather":
            _, port_id, token = item
            port = self.nic.port(port_id)
            if self._token_live(port, token):
                assert token.parent is not None
                yield from self._send_barrier_packet(
                    token, token.parent, PacketType.BARRIER_GATHER
                )
        elif kind == "barrier_bcast":
            yield from self._bcast_step(item[1], item[2])
        elif kind == "barrier_resend":
            yield from self._resend(
                item[1], item[2], item[3], item[4],
                item[5] if len(item) > 5 else None,
            )
        elif kind == "barrier_reject":
            yield from self._send_reject(
                item[1], item[2], item[3] if len(item) > 3 else None
            )
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"barrier engine: unknown SDMA work {item!r}")

    # -- PE ----------------------------------------------------------------
    def _pe_loop(self, port: NicPort, token: BarrierSendToken):
        """Advance the PE token until it parks on a receive or completes."""
        nic = self.nic
        while True:
            if not self._token_live(port, token):
                return
            if token.node_index >= len(token.steps):
                nic.rdma_queue.put(("barrier_complete", port.port_id, token))
                return
            step = token.current_step
            if step.send:
                yield from self._send_barrier_packet(
                    token, step.peer, PacketType.BARRIER_PE
                )
            if not step.recv:
                yield from self.cpu("barrier_advance")
                token.node_index += 1
                continue
            # "it checks to see if a barrier packet has been received from
            # that same destination" -- the post-prepare record check.
            # CPU first, then atomic check + mutation (see
            # on_barrier_packet for the atomicity discipline).
            yield from self.cpu("barrier_check")
            conn = nic.connection(step.peer[0])
            recorded = conn.unexpected.check_clear(step.peer[1])
            if recorded:
                if recorded is not True:
                    token.cause_ctx = recorded
                token.node_index += 1
                self.trace(
                    "advance", port=port.port_id, src=step.peer,
                    seq=token.barrier_seq, ctx=token.cause_ctx or token.ctx,
                )
                yield from self.cpu("barrier_advance")
                continue
            token.awaiting_recv = True
            return

    # -- GB ----------------------------------------------------------------
    def _gb_initiate(self, port: NicPort, token: BarrierSendToken):
        """Consume pre-recorded gathers, then proceed if all are in.

        The RDMA machine may consume gathers concurrently (it claims the
        phase transition atomically), so every post-CPU-wait step
        re-checks that the gather phase is still ours to finish.
        """
        nic = self.nic
        for child in sorted(token.gather_pending):
            yield from self.cpu("gb_gather_check")
            if token.phase != "gather" or not self._token_live(port, token):
                return  # the RDMA side finished the gather phase for us
            recorded = nic.connection(child[0]).unexpected.check_clear(child[1])
            if recorded:
                if recorded is not True:
                    token.cause_ctx = recorded
                token.gather_pending.discard(child)
        if token.phase == "gather" and not token.gather_pending:
            token.phase = "gathers_done"
            self.trace(
                "gb.gather.end", port=port.port_id, key=token.barrier_seq,
                ctx=token.cause_ctx or token.ctx,
            )
            yield from self._gb_all_gathers_in(port, token)

    def _gb_all_gathers_in(self, port: NicPort, token: BarrierSendToken):
        """All children reported (phase already claimed as
        "gathers_done"): the root completes + broadcasts, others forward
        the gather upward and wait for the broadcast."""
        if token.is_root:
            token.phase = "bcast"
            self.nic.rdma_queue.put(("barrier_complete", port.port_id, token))
        else:
            token.phase = "await_bcast"
            self.nic.sdma_inbox.put(
                ("barrier_send_gather", port.port_id, token)
            )
        yield from ()

    def _bcast_step(self, port_id: int, token: BarrierSendToken):
        """Send the broadcast to the next child, then re-queue (SDMA)."""
        nic = self.nic
        port = nic.port(port_id)
        if not (
            port.is_open
            and port.generation == token.owner_generation
            and token.phase == "bcast"
        ):
            return
        child = token.children[token.bcast_index]
        yield from self._send_barrier_packet(token, child, PacketType.BARRIER_BCAST)
        yield from self.cpu("gb_token_requeue")
        token.bcast_index += 1
        if token.bcast_index < len(token.children):
            nic.sdma_inbox.put(("barrier_bcast", port_id, token))
        else:
            token.phase = "done"
            self.trace(
                "gb.bcast.end", port=port_id, key=token.barrier_seq,
                ctx=token.cause_ctx or token.ctx,
            )

    # ------------------------------------------------------------------
    # RDMA-side entry points
    # ------------------------------------------------------------------
    def on_barrier_packet(self, packet: Packet):
        """Record/advance on a received barrier message (RDMA context).

        Atomicity discipline: the CPU time for inspecting the port's
        barrier state is charged *first*; the decision and every state
        mutation then happen at one simulated instant, with any further
        CPU cost charged afterwards.  This mirrors the real MCP, whose
        dispatch loop makes each firmware action atomic -- splitting a
        decision from its mutation across a CPU wait would let the SDMA
        machine's record check interleave and lose the message (a
        deadlock this project's integration tests caught).
        """
        nic = self.nic
        src: Endpoint = (packet.src_node, packet.src_port)

        # The dereference + inspection cost (Section 5.2: "the RDMA state
        # machine can access the state of the barrier by simply
        # dereferencing the pointer").
        yield from self.cpu("barrier_check")

        # ---- atomic decision + mutation (no yields in this block) ----
        port = nic.ports.get(packet.dst_port)
        if port is None or not port.is_open:
            # Section 3.2, adopted solution: record arrivals for a closed
            # port; they are rejected (and thus resent) when it opens.
            if port is not None:
                port.closed_barrier_record.add(src)
                port.closed_barrier_ctx[src] = packet.ctx
            self.trace(
                "closed_port_record", src=src, port=packet.dst_port,
                ctx=packet.ctx,
            )
            yield from self.cpu("barrier_record")
            return

        token = port.barrier_send_token
        if (
            token is not None
            and token.algorithm == "pe"
            and packet.ptype is PacketType.BARRIER_PE
            and token.awaiting_recv
            and src == token.current_peer
        ):
            token.awaiting_recv = False
            token.node_index += 1
            token.cause_ctx = packet.ctx or token.cause_ctx
            completed = token.node_index >= len(token.steps)
            self.trace(
                "advance", port=port.port_id, src=src,
                seq=token.barrier_seq, ctx=token.cause_ctx or token.ctx,
            )
            # ---- end of atomic block ----
            yield from self.cpu("barrier_advance")
            if completed:
                yield from self.complete(port.port_id, token)
            else:
                nic.sdma_inbox.put(("barrier_send_pe", port.port_id, token))
            return

        if token is not None and token.algorithm == "gb":
            if (
                packet.ptype is PacketType.BARRIER_GATHER
                and token.phase == "gather"
                and src in token.gather_pending
            ):
                token.gather_pending.discard(src)
                token.cause_ctx = packet.ctx or token.cause_ctx
                all_in = not token.gather_pending
                self.trace(
                    "advance", port=port.port_id, src=src,
                    seq=token.barrier_seq, ctx=token.cause_ctx or token.ctx,
                )
                if all_in:
                    # Claim the transition atomically (the SDMA-side
                    # initiate scan also checks the phase).
                    token.phase = "gathers_done"
                    self.trace(
                        "gb.gather.end", port=port.port_id,
                        key=token.barrier_seq,
                        ctx=token.cause_ctx or token.ctx,
                    )
                # ---- end of atomic block ----
                yield from self.cpu("gb_gather_check")
                if all_in:
                    yield from self._gb_all_gathers_in(port, token)
                return
            if (
                packet.ptype is PacketType.BARRIER_BCAST
                and token.phase == "await_bcast"
                and src == token.parent
            ):
                token.phase = "bcast"
                token.cause_ctx = packet.ctx or token.cause_ctx
                self.trace(
                    "advance", port=port.port_id, src=src,
                    seq=token.barrier_seq, ctx=token.cause_ctx or token.ctx,
                )
                # ---- end of atomic block ----
                yield from self.complete(port.port_id, token)
                return

        # "In all other cases, the reception of the message is simply
        # recorded."  The bit is set atomically at the decision instant.
        nic.connection(packet.src_node).unexpected.set(
            packet.src_port, dst_port=packet.dst_port, ctx=packet.ctx
        )
        self.unexpected_recorded += 1
        self.trace("recorded", src=src, port=packet.dst_port, ctx=packet.ctx)
        yield from self.cpu("barrier_record")

    def complete(self, port_id: int, token: BarrierSendToken):
        """Post the completion notification to the host (RDMA context).

        "the RDMA state machine sends a receive token to the host
        indicating that the barrier has completed, and sets the send token
        pointer in the port data structure to zero" -- and for GB, *then*
        starts the broadcast to the children.
        """
        nic = self.nic
        port = nic.port(port_id)
        if not self._token_live(port, token):
            return
        yield from self.cpu("barrier_complete")
        buf = port.take_barrier_buffer()
        if buf is None:
            raise RuntimeError(
                f"node {nic.node_id} port {port_id}: barrier completed but no "
                "barrier buffer was provided (call gm_provide_barrier_buffer "
                "before initiating the barrier)"
            )
        yield from nic.rdma_engine.transfer(COMPLETION_DMA_BYTES)
        yield from self.cpu("post_event")
        nic_complete_time = nic.sim.now
        port.barrier_send_token = None
        port.barriers_completed += 1
        port.return_send_token()
        ctx = token.cause_ctx or token.ctx
        nic.post_host_event(
            port,
            BarrierCompletedEvent(
                port_id=port_id,
                barrier_seq=token.barrier_seq,
                nic_complete_time=nic_complete_time,
                ctx=ctx,
            ),
        )
        self.trace(
            f"{token.algorithm}.end", port=port_id, key=token.barrier_seq,
            ctx=ctx,
        )
        self.trace("complete", port=port_id, seq=token.barrier_seq, ctx=ctx)
        if token.queued_at is not None:
            self._latency_hist.observe(nic_complete_time - token.queued_at)
        if token.algorithm == "gb":
            if token.phase == "bcast" and token.children:
                token.bcast_index = 0
                self.trace(
                    "gb.bcast.begin", port=port_id, key=token.barrier_seq,
                    ctx=ctx,
                )
                nic.sdma_inbox.put(("barrier_bcast", port_id, token))
            else:
                token.phase = "done"

    # ------------------------------------------------------------------
    # Fail-stop abort (peer suspected mid-barrier)
    # ------------------------------------------------------------------
    def abort_suspects(self, suspects) -> set:
        """Abort every in-flight barrier on this NIC: a peer was declared
        failed, and a barrier live at that instant can no longer be
        assumed completable -- the suspect may sit anywhere in the global
        dependency chain, not just among this token's direct peers.

        Runs synchronously at the suspicion instant (the real MCP reacts
        within one firmware dispatch).  The port's send token and barrier
        buffer are reclaimed and a ctx-carrying
        :class:`~repro.gm.events.PeerFailureEvent` is posted; returns the
        set of port ids notified so the caller can fan generic events out
        to the remaining ports without duplicates (a duplicate event
        would desynchronize the survivors' shrink rounds).
        """
        nic = self.nic
        notified: set = set()
        for port_id in sorted(nic.ports):
            port = nic.ports[port_id]
            token = port.barrier_send_token
            if token is None or not port.is_open:
                continue
            port.barrier_send_token = None
            port.return_send_token()
            port.take_barrier_buffer()
            ctx = token.cause_ctx or token.ctx
            self.trace(
                "abort", port=port_id, seq=token.barrier_seq,
                suspects=sorted(suspects), ctx=ctx,
            )
            nic.post_host_event(
                port,
                PeerFailureEvent(
                    port_id=port_id,
                    suspects=frozenset(suspects),
                    ctx=ctx,
                    barrier_seq=token.barrier_seq,
                ),
            )
            notified.add(port_id)
        return notified

    # ------------------------------------------------------------------
    # Packet transmission with reliability (Section 4.4)
    # ------------------------------------------------------------------
    def _send_barrier_packet(
        self,
        token: BarrierSendToken,
        endpoint: Endpoint,
        ptype: PacketType,
        is_resend: bool = False,
        cause_ctx=None,
    ):
        """Prepare and queue one barrier packet (SDMA context).

        The outgoing packet's trace context is a child span of whatever
        *caused* this send: an explicit ``cause_ctx`` (REJECT recovery),
        else the incoming packet that advanced the token, else the
        host-stamped root -- so the span tree threads through the NIC
        hop-by-hop exactly like the barrier's happens-before chain.
        """
        nic = self.nic
        dst_node, dst_port = endpoint
        yield from self.cpu("barrier_packet_prep")

        base = cause_ctx or token.cause_ctx or token.ctx
        pctx = base.child() if base is not None else None

        # Section 3.4 optimization: two ports of the same NIC synchronize
        # by setting the local flag, no wire message.
        if nic.params.local_barrier_optimization and dst_node == nic.node_id:
            packet = nic.make_packet(
                ptype,
                dst_node=dst_node,
                dst_port=dst_port,
                src_port=token.src_port,
                seqno=token.barrier_seq,
                payload_bytes=0,
                payload={"barrier_seq": token.barrier_seq},
                ctx=pctx,
            )
            token.sent_to.append((endpoint, ptype.value))
            nic.rdma_queue.put(("barrier_rx", packet))
            self.trace("local_deliver", dst=endpoint, ctx=pctx)
            return

        conn = nic.connection(dst_node)
        mode = nic.params.barrier_reliability
        if mode is BarrierReliability.SEPARATE:
            seqno = conn.assign_barrier_seqno(token.src_port)
        elif mode is BarrierReliability.TOKEN_PER_DESTINATION:
            seqno = conn.assign_seqno()
        else:
            seqno = token.barrier_seq

        packet = nic.make_packet(
            ptype,
            dst_node=dst_node,
            dst_port=dst_port,
            src_port=token.src_port,
            seqno=seqno,
            payload_bytes=BARRIER_PAYLOAD_BYTES,
            payload={"barrier_seq": token.barrier_seq},
            ctx=pctx,
        )
        token.sent_to.append((endpoint, ptype.value))

        if mode is BarrierReliability.SEPARATE:
            conn.record_barrier_sent(
                BarrierUnacked(
                    src_port=token.src_port, barrier_seqno=seqno, packet=packet
                )
            )
            if conn.barrier_retransmit_timer is None:
                nic.manage_barrier_retransmit_timer(conn)
        elif mode is BarrierReliability.TOKEN_PER_DESTINATION:
            # "have the barrier event use one token for every destination":
            # the packet joins the regular go-back-N sent list.
            conn.record_sent(SentEntry(seqno=seqno, packet=packet, token=None))
            nic.ensure_retransmit_timer(conn)

        if is_resend:
            self.resends += 1
        nic.send_queue.put((packet, False))
        self.trace("send", dst=endpoint, type=ptype.value, seq=seqno, ctx=pctx)

    # ------------------------------------------------------------------
    # Closed-port recovery (Section 3.2)
    # ------------------------------------------------------------------
    def on_port_open(self, port_id: int) -> None:
        """Reject barrier messages recorded while the port was closed."""
        port = self.nic.port(port_id)
        for src in sorted(port.closed_barrier_record):
            self.nic.sdma_inbox.put(
                ("barrier_reject", src, port_id,
                 port.closed_barrier_ctx.get(src))
            )
        port.closed_barrier_record.clear()
        port.closed_barrier_ctx.clear()

    def _send_reject(self, target: Endpoint, local_port: int, cause_ctx=None):
        """Build + queue a BARRIER_REJECT to a recorded sender (SDMA)."""
        yield from self.cpu("packet_prep")
        pctx = cause_ctx.child() if cause_ctx is not None else None
        packet = self.nic.make_packet(
            PacketType.BARRIER_REJECT,
            dst_node=target[0],
            dst_port=target[1],
            src_port=local_port,
            payload={},
            ctx=pctx,
        )
        self.rejects_sent += 1
        self.nic.send_queue.put((packet, False))
        self.trace("reject", to=target, port=local_port, ctx=pctx)

    def on_reject(self, packet: Packet):
        """A peer rejected our barrier message; resend if still relevant
        ("but only if the endpoint that initiated the barrier has not
        closed since the message was sent").  RECV context."""
        nic = self.nic
        port = nic.ports.get(packet.dst_port)
        if port is None or not port.is_open:
            return
        rejector: Endpoint = (packet.src_node, packet.src_port)
        ring = self._recent_tokens.get(packet.dst_port, ())
        # Every live message type sent to the rejector must go out again:
        # a PE gather and a GB broadcast (or two phases of one algorithm)
        # can both be outstanding to the same slow-opening peer, and the
        # peer's barrier stalls on whichever one we skip.  Walk the ring
        # oldest-first so resends arrive in barrier order.
        resends: list = []
        seen: set = set()
        for token in ring:
            if token.owner_generation != port.generation:
                continue
            for ep, ptype_val in token.sent_to:
                if ep != rejector:
                    continue
                key = (id(token), ptype_val)
                if key not in seen:
                    seen.add(key)
                    resends.append((token, ptype_val))
        if resends:
            # Drop superseded SEPARATE-mode retransmission state for this
            # destination before resending with fresh seqnos.
            conn = nic.connection(rejector[0])
            src_ports = {token.src_port for token, _ in resends}
            conn.barrier_unacked = [
                e
                for e in conn.barrier_unacked
                if not (
                    e.src_port in src_ports
                    and e.packet.dst_port == rejector[1]
                )
            ]
            nic.manage_barrier_retransmit_timer(conn)
            for token, ptype_val in resends:
                nic.sdma_inbox.put(
                    (
                        "barrier_resend",
                        packet.dst_port,
                        token,
                        rejector,
                        PacketType(ptype_val),
                        packet.ctx,
                    )
                )
        yield from ()

    def _resend(
        self,
        port_id: int,
        token: BarrierSendToken,
        endpoint: Endpoint,
        ptype: PacketType,
        cause_ctx=None,
    ):
        """Retransmit one barrier message after a REJECT (SDMA context)."""
        port = self.nic.port(port_id)
        if not port.is_open or port.generation != token.owner_generation:
            return
        yield from self._send_barrier_packet(
            token, endpoint, ptype, is_resend=True, cause_ctx=cause_ctx
        )
