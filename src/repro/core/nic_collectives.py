"""NIC-based data collectives: reduce, allreduce, broadcast.

The paper's Section 8 closes with: "we intend to investigate whether
other collective communication operations, such as reductions or
all-to-all broadcast could benefit from similar NIC-level
implementations."  This module is that investigation, built on the same
machinery as the GB barrier:

* a **reduction** travels up the tree like the gather phase, but each
  message carries a value and every node combines its children's values
  with its own (``coll_combine`` firmware cycles per value);
* a **broadcast** travels down the tree like the broadcast phase,
  carrying the root's value (or the reduction result, for allreduce);
* the **unexpected-message record** generalizes from one bit to one value
  slot per (connection, source port) -- the same at-most-one-outstanding
  invariant holds, because a peer cannot start its next collective before
  this node releases it from the current one.

The engine follows the barrier engine's atomicity discipline: charge the
NIC CPU first, then decide and mutate at one simulated instant.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Optional

from repro.gm.constants import BarrierReliability
from repro.gm.events import CollectiveCompletedEvent
from repro.gm.port import NicPort
from repro.gm.tokens import CollectiveSendToken, Endpoint
from repro.network.packet import Packet, PacketType
from repro.nic.mcp.connection import BarrierUnacked, SentEntry

if TYPE_CHECKING:  # pragma: no cover
    from repro.nic.nic import Nic

#: Size of the completion notification DMAed to the host (the result
#: value rides along, so the payload size adds to this).
COMPLETION_DMA_BYTES = 16

#: The reduction operators supported by the firmware.
REDUCTION_OPS = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "min": min,
    "max": max,
}


def combine(op: str, a, b):
    """Apply reduction operator ``op``; None acts as the identity."""
    if a is None:
        return b
    if b is None:
        return a
    return REDUCTION_OPS[op](a, b)


class NicCollectiveEngine:
    """Collective firmware state shared by the MCP machines of one NIC."""

    def __init__(self, nic: "Nic") -> None:
        self.nic = nic
        self._recent_tokens: Dict[int, Deque[CollectiveSendToken]] = {}
        self.collectives_initiated = 0
        self.unexpected_recorded = 0
        self.resends = 0

    # ------------------------------------------------------------------
    def cpu(self, operation: str):
        """Charge one firmware operation against the NIC processor."""
        yield from self.nic.cpu_time(operation)

    def trace(self, label: str, **payload) -> None:
        """Record a trace event if tracing is enabled."""
        if self.nic.tracer is not None:
            self.nic.tracer.record(
                f"nic{self.nic.node_id}", f"coll.{label}", **payload
            )

    def _token_live(self, port: NicPort, token: CollectiveSendToken) -> bool:
        return port.is_open and port.coll_send_token is token

    def _remember(self, port_id: int, token: CollectiveSendToken) -> None:
        ring = self._recent_tokens.get(port_id)
        if ring is None:
            ring = deque(maxlen=4)
            self._recent_tokens[port_id] = ring
        ring.append(token)

    # ------------------------------------------------------------------
    # SDMA-side entry points
    # ------------------------------------------------------------------
    def initiate(self, port_id: int, token: CollectiveSendToken):
        """Process a collective send token from the host (SDMA context)."""
        nic = self.nic
        yield from self.cpu("gb_initiate")
        port = nic.port(port_id)
        if not port.is_open:
            return
        if port.coll_send_token is not None:
            raise RuntimeError(
                f"port {port_id} on node {nic.node_id} initiated a collective "
                "while one is already in flight (one collective per port)"
            )
        token.owner_generation = port.generation
        port.coll_send_token = token
        self._remember(port_id, token)
        self.collectives_initiated += 1
        self.trace("initiate", port=port_id, kind=token.kind, seq=token.coll_seq)

        if token.kind in ("reduce", "allreduce"):
            yield from self._reduce_initiate(port, token)
        else:  # bcast
            yield from self._bcast_initiate(port, token)

    def sdma_work(self, item: tuple):
        """Dispatch collective work items queued to the SDMA inbox."""
        kind = item[0]
        if kind == "coll_send_reduce":
            _, port_id, token = item
            port = self.nic.port(port_id)
            if self._token_live(port, token):
                assert token.parent is not None
                yield from self._send_coll_packet(
                    token, token.parent, PacketType.COLL_REDUCE,
                    token.accumulator,
                )
                if token.kind == "reduce":
                    # Plain reduce: non-roots are done once their combined
                    # value is on its way up; only the root gets a result.
                    token.phase = "done"
                    self.nic.rdma_queue.put(
                        ("coll_complete", port_id, token)
                    )
        elif kind == "coll_bcast":
            yield from self._bcast_step(item[1], item[2])
        elif kind == "coll_resend":
            yield from self._resend(item[1], item[2], item[3], item[4])
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"collective engine: unknown SDMA work {item!r}")

    # -- reduction phase --------------------------------------------------
    def _reduce_initiate(self, port: NicPort, token: CollectiveSendToken):
        """Consume pre-recorded child contributions, proceed if all in."""
        nic = self.nic
        for child in sorted(token.reduce_pending):
            yield from self.cpu("gb_gather_check")
            if token.phase != "reduce" or not self._token_live(port, token):
                return
            slot = nic.connection(child[0]).coll_unexpected.get(child[1])
            if slot is not None and slot["kind"] == "reduce":
                del nic.connection(child[0]).coll_unexpected[child[1]]
                token.reduce_pending.discard(child)
                token.accumulator = combine(
                    token.op, token.accumulator, slot["value"]
                )
                yield from self.cpu("coll_combine")
                if token.phase != "reduce" or not self._token_live(port, token):
                    return
        if token.phase == "reduce" and not token.reduce_pending:
            token.phase = "reduce_done"
            yield from self._reduce_all_in(port, token)

    def _reduce_all_in(self, port: NicPort, token: CollectiveSendToken):
        """All children combined (phase claimed as "reduce_done")."""
        if token.is_root:
            token.result = token.accumulator
            if token.kind == "allreduce" and token.children:
                token.phase = "bcast"
            else:
                token.phase = "done"
            self.nic.rdma_queue.put(("coll_complete", port.port_id, token))
        else:
            # Forward the combined value to the parent.  For allreduce we
            # then wait for the result to come back down.
            if token.kind == "allreduce":
                token.phase = "await_result"
            self.nic.sdma_inbox.put(
                ("coll_send_reduce", port.port_id, token)
            )
        yield from ()

    # -- broadcast phase ---------------------------------------------------
    def _bcast_initiate(self, port: NicPort, token: CollectiveSendToken):
        """Root starts sending immediately; non-roots check the record."""
        nic = self.nic
        if token.is_root:
            token.result = token.value
            # The root's value is final: complete, then forward.
            nic.rdma_queue.put(("coll_complete", port.port_id, token))
            yield from ()
            return
        yield from self.cpu("gb_gather_check")
        if not self._token_live(port, token) or token.phase != "await_value":
            return
        assert token.parent is not None
        slot = nic.connection(token.parent[0]).coll_unexpected.get(token.parent[1])
        if slot is not None and slot["kind"] == "bcast":
            del nic.connection(token.parent[0]).coll_unexpected[token.parent[1]]
            token.result = slot["value"]
            token.phase = "bcast"
            nic.rdma_queue.put(("coll_complete", port.port_id, token))

    def _bcast_step(self, port_id: int, token: CollectiveSendToken):
        """Send the value to the next child, then re-queue (SDMA)."""
        nic = self.nic
        port = nic.port(port_id)
        if not (
            port.is_open
            and port.generation == token.owner_generation
            and token.phase == "bcast"
        ):
            return
        child = token.children[token.bcast_index]
        yield from self._send_coll_packet(
            token, child, PacketType.COLL_BCAST, token.result
        )
        yield from self.cpu("gb_token_requeue")
        token.bcast_index += 1
        if token.bcast_index < len(token.children):
            nic.sdma_inbox.put(("coll_bcast", port_id, token))
        else:
            token.phase = "done"

    # ------------------------------------------------------------------
    # RDMA-side entry points
    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet):
        """Combine/record an incoming collective message (RDMA context)."""
        nic = self.nic
        src: Endpoint = (packet.src_node, packet.src_port)
        value = packet.payload.get("value")

        yield from self.cpu("barrier_check")

        # ---- atomic decision + mutation ----
        port = nic.ports.get(packet.dst_port)
        if port is None or not port.is_open:
            if port is not None:
                port.closed_barrier_record.add(src)
            self.trace("closed_port_record", src=src, port=packet.dst_port)
            yield from self.cpu("barrier_record")
            return

        token = port.coll_send_token
        if token is not None and packet.ptype is PacketType.COLL_REDUCE:
            if token.phase == "reduce" and src in token.reduce_pending:
                token.reduce_pending.discard(src)
                token.accumulator = combine(token.op, token.accumulator, value)
                all_in = not token.reduce_pending
                if all_in:
                    token.phase = "reduce_done"
                # ---- end of atomic block ----
                yield from self.cpu("coll_combine")
                if all_in:
                    yield from self._reduce_all_in(port, token)
                return
        elif token is not None and packet.ptype is PacketType.COLL_BCAST:
            expecting = (
                (token.kind == "allreduce" and token.phase == "await_result")
                or (token.kind == "bcast" and token.phase == "await_value")
            )
            if expecting and src == token.parent:
                token.result = value
                token.phase = "bcast"
                # ---- end of atomic block ----
                yield from self.complete(port.port_id, token)
                return

        # Unexpected: record the value in the per-endpoint slot.  The slot
        # holds at most one value: like the paper's one-bit barrier record,
        # correctness relies on "once a process initiates a [collective]
        # and is waiting for it to complete, it will not initiate another
        # one" (Section 3.1).  Reduce and bcast do not self-synchronize
        # the way barriers/allreduces do, so an application running
        # back-to-back bcasts must interpose synchronization; a violated
        # invariant is detected here rather than silently corrupting the
        # next collective.
        kind = "reduce" if packet.ptype is PacketType.COLL_REDUCE else "bcast"
        slot = nic.connection(packet.src_node).coll_unexpected.get(packet.src_port)
        if slot is not None:
            raise RuntimeError(
                f"node {nic.node_id}: second unexpected collective message "
                f"from {src} before the first was consumed -- the peer ran "
                "more than one collective ahead (missing synchronization)"
            )
        nic.connection(packet.src_node).coll_unexpected[packet.src_port] = {
            "kind": kind,
            "value": value,
            "dst_port": packet.dst_port,
        }
        self.unexpected_recorded += 1
        self.trace("recorded", src=src, kind=kind)
        yield from self.cpu("barrier_record")

    def complete(self, port_id: int, token: CollectiveSendToken):
        """Post the completion (with result) to the host (RDMA context)."""
        nic = self.nic
        port = nic.port(port_id)
        if not self._token_live(port, token):
            return
        yield from self.cpu("barrier_complete")
        buf = port.take_barrier_buffer()
        if buf is None:
            raise RuntimeError(
                f"node {nic.node_id} port {port_id}: collective completed "
                "but no completion buffer was provided "
                "(call gm_provide_barrier_buffer before initiating)"
            )
        yield from nic.rdma_engine.transfer(
            COMPLETION_DMA_BYTES + token.payload_bytes
        )
        yield from self.cpu("post_event")
        nic_complete_time = nic.sim.now
        port.coll_send_token = None
        port.return_send_token()
        nic.post_host_event(
            port,
            CollectiveCompletedEvent(
                port_id=port_id,
                coll_seq=token.coll_seq,
                kind=token.kind,
                result=token.result,
                nic_complete_time=nic_complete_time,
            ),
        )
        self.trace("complete", port=port_id, seq=token.coll_seq, kind=token.kind)
        if token.phase == "bcast" and token.children:
            token.bcast_index = 0
            nic.sdma_inbox.put(("coll_bcast", port_id, token))
        elif token.phase == "bcast":
            token.phase = "done"

    # ------------------------------------------------------------------
    # Transmission (same reliability modes as barrier packets)
    # ------------------------------------------------------------------
    def _send_coll_packet(
        self,
        token: CollectiveSendToken,
        endpoint: Endpoint,
        ptype: PacketType,
        value,
        is_resend: bool = False,
    ):
        """Prepare and queue one collective packet (SDMA context)."""
        nic = self.nic
        dst_node, dst_port = endpoint
        yield from self.cpu("barrier_packet_prep")

        if nic.params.local_barrier_optimization and dst_node == nic.node_id:
            packet = nic.make_packet(
                ptype, dst_node=dst_node, dst_port=dst_port,
                src_port=token.src_port, seqno=token.coll_seq,
                payload_bytes=0, payload={"value": value},
            )
            token.sent_to.append((endpoint, ptype.value))
            nic.rdma_queue.put(("barrier_rx", packet))
            return

        conn = nic.connection(dst_node)
        mode = nic.params.barrier_reliability
        if mode is BarrierReliability.SEPARATE:
            seqno = conn.assign_barrier_seqno(token.src_port)
        elif mode is BarrierReliability.TOKEN_PER_DESTINATION:
            seqno = conn.assign_seqno()
        else:
            seqno = token.coll_seq

        packet = nic.make_packet(
            ptype, dst_node=dst_node, dst_port=dst_port,
            src_port=token.src_port, seqno=seqno,
            payload_bytes=token.payload_bytes, payload={"value": value},
        )
        token.sent_to.append((endpoint, ptype.value))

        if mode is BarrierReliability.SEPARATE:
            conn.record_barrier_sent(
                BarrierUnacked(
                    src_port=token.src_port, barrier_seqno=seqno, packet=packet
                )
            )
            if conn.barrier_retransmit_timer is None:
                nic.manage_barrier_retransmit_timer(conn)
        elif mode is BarrierReliability.TOKEN_PER_DESTINATION:
            conn.record_sent(SentEntry(seqno=seqno, packet=packet, token=None))
            nic.ensure_retransmit_timer(conn)

        if is_resend:
            self.resends += 1
        nic.send_queue.put((packet, False))
        self.trace("send", dst=endpoint, type=ptype.value, seq=seqno)

    # ------------------------------------------------------------------
    # Closed-port recovery (shares the barrier REJECT mechanism)
    # ------------------------------------------------------------------
    def on_reject(self, packet: Packet):
        """A peer rejected one of our collective messages; resend while
        the initiating port is still the same generation (RECV ctx)."""
        nic = self.nic
        port = nic.ports.get(packet.dst_port)
        if port is None or not port.is_open:
            return
        rejector: Endpoint = (packet.src_node, packet.src_port)
        ring = self._recent_tokens.get(packet.dst_port, ())
        for token in reversed(ring):
            if token.owner_generation != port.generation:
                continue
            matches = [
                (ep, ptype_val)
                for (ep, ptype_val) in token.sent_to
                if ep == rejector
            ]
            if not matches:
                continue
            conn = nic.connection(rejector[0])
            conn.barrier_unacked = [
                e for e in conn.barrier_unacked
                if not (
                    e.src_port == token.src_port
                    and e.packet.dst_port == rejector[1]
                )
            ]
            nic.manage_barrier_retransmit_timer(conn)
            for _, ptype_val in matches[-1:]:
                nic.sdma_inbox.put(
                    ("coll_resend", packet.dst_port, token, rejector,
                     PacketType(ptype_val))
                )
            break
        yield from ()

    def _resend(self, port_id, token, endpoint, ptype):
        port = self.nic.port(port_id)
        if not port.is_open or port.generation != token.owner_generation:
            return
        if ptype is PacketType.COLL_REDUCE:
            value = token.accumulator
        else:
            value = token.result
        yield from self._send_coll_packet(
            token, endpoint, ptype, value, is_resend=True
        )
