"""User-facing NIC-based data collectives (the Section 8 extension).

``reduce``, ``allreduce`` and ``bcast`` run on the NIC over the same
d-ary trees as the GB barrier; completion arrives as a
:class:`~repro.gm.events.CollectiveCompletedEvent` carrying the result.
All are host generators, like :func:`repro.core.barrier.barrier`.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from repro.core.topology_calc import gb_plan
from repro.gm.api import GmPort
from repro.gm.events import CollectiveCompletedEvent

Endpoint = Tuple[int, int]


def _default_dimension(group_size: int, dimension: Optional[int]) -> int:
    if dimension is not None:
        return dimension
    return 2 if group_size > 2 else 1


def _run_collective(
    port: GmPort,
    group: Sequence[Endpoint],
    rank: int,
    kind: str,
    value: Any,
    op: str,
    dimension: Optional[int],
    payload_bytes: int,
):
    """Shared driver: plan, initiate, await the completion event."""
    if len(group) == 1:
        # Degenerate group: the result is the local value.
        return value
    plan = gb_plan(group, rank, _default_dimension(len(group), dimension))
    yield from port.provide_barrier_buffer()
    token = yield from port.collective_send_with_callback(
        kind, plan, value=value, op=op, payload_bytes=payload_bytes
    )
    event = yield from port.receive_where(
        lambda ev: isinstance(ev, CollectiveCompletedEvent)
        and ev.coll_seq == token.coll_seq
    )
    return event.result


def reduce(
    port: GmPort,
    group: Sequence[Endpoint],
    rank: int,
    value: Any,
    op: str = "sum",
    dimension: Optional[int] = None,
    payload_bytes: int = 8,
):
    """NIC-based reduction to the root (rank 0 of ``group``).

    Host generator; returns the combined value at the root and ``None``
    at every other rank.
    """
    result = yield from _run_collective(
        port, group, rank, "reduce", value, op, dimension, payload_bytes
    )
    return result


def allreduce(
    port: GmPort,
    group: Sequence[Endpoint],
    rank: int,
    value: Any,
    op: str = "sum",
    dimension: Optional[int] = None,
    payload_bytes: int = 8,
):
    """NIC-based allreduce: every rank returns the combined value.

    Structurally identical to the GB barrier -- a barrier *is* an
    allreduce without data -- so its latency profile matches NIC-GB plus
    the per-hop value-combining cost.
    """
    result = yield from _run_collective(
        port, group, rank, "allreduce", value, op, dimension, payload_bytes
    )
    return result


def bcast(
    port: GmPort,
    group: Sequence[Endpoint],
    rank: int,
    value: Any = None,
    dimension: Optional[int] = None,
    payload_bytes: int = 8,
):
    """NIC-based broadcast of the root's ``value`` down the tree.

    Host generator; every rank (including the root) returns the root's
    value.  Non-root ranks' ``value`` argument is ignored.
    """
    result = yield from _run_collective(
        port, group, rank, "bcast", value, "sum", dimension, payload_bytes
    )
    return result
