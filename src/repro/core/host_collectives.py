"""Host-based data-collective baselines (reduce / allreduce / bcast).

The comparison points for the Section 8 extension: the same tree
algorithms run entirely at the host over plain GM messages, so every
hop pays the full Send + SDMA + Network + Recv + RDMA + HRecv path of
Equation 1.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from repro.core.nic_collectives import combine
from repro.core.topology_calc import gb_plan
from repro.gm.api import GmPort
from repro.gm.events import RecvEvent

Endpoint = Tuple[int, int]


def _recv_tagged(port: GmPort, src: Endpoint, tag: str):
    event = yield from port.receive_where(
        lambda ev: isinstance(ev, RecvEvent)
        and (ev.src_node, ev.src_port) == src
        and isinstance(ev.payload, dict)
        and ev.payload.get("tag") == tag
    )
    return event.payload["value"]


def _send_tagged(port: GmPort, dst: Endpoint, tag: str, value, payload_bytes: int):
    yield from port.send_with_callback(
        dst_node=dst[0],
        dst_port=dst[1],
        size_bytes=payload_bytes,
        payload={"tag": tag, "value": value},
    )


def _default_dimension(group_size: int, dimension: Optional[int]) -> int:
    if dimension is not None:
        return dimension
    return 2 if group_size > 2 else 1


def host_reduce(
    port: GmPort,
    group: Sequence[Endpoint],
    rank: int,
    value: Any,
    op: str = "sum",
    dimension: Optional[int] = None,
    payload_bytes: int = 8,
):
    """Host-based tree reduction; returns the result at rank 0, else None."""
    if len(group) == 1:
        return value
    plan = gb_plan(group, rank, _default_dimension(len(group), dimension))
    expected = len(plan.children)
    yield from port.ensure_receive_buffers(2 * max(expected, 1))
    acc = value
    for child in plan.children:
        v = yield from _recv_tagged(port, child, "reduce")
        acc = combine(op, acc, v)
    if plan.parent is not None:
        yield from _send_tagged(port, plan.parent, "reduce", acc, payload_bytes)
        return None
    return acc


def host_bcast(
    port: GmPort,
    group: Sequence[Endpoint],
    rank: int,
    value: Any = None,
    dimension: Optional[int] = None,
    payload_bytes: int = 8,
):
    """Host-based tree broadcast; every rank returns the root's value."""
    if len(group) == 1:
        return value
    plan = gb_plan(group, rank, _default_dimension(len(group), dimension))
    yield from port.ensure_receive_buffers(2)
    if plan.parent is not None:
        value = yield from _recv_tagged(port, plan.parent, "bcast")
    for child in plan.children:
        yield from _send_tagged(port, child, "bcast", value, payload_bytes)
    return value


def host_allreduce(
    port: GmPort,
    group: Sequence[Endpoint],
    rank: int,
    value: Any,
    op: str = "sum",
    dimension: Optional[int] = None,
    payload_bytes: int = 8,
):
    """Host-based allreduce: tree reduction then tree broadcast."""
    if len(group) == 1:
        return value
    plan = gb_plan(group, rank, _default_dimension(len(group), dimension))
    expected = len(plan.children) + (1 if plan.parent is not None else 0)
    yield from port.ensure_receive_buffers(2 * expected)
    acc = value
    for child in plan.children:
        v = yield from _recv_tagged(port, child, "reduce")
        acc = combine(op, acc, v)
    if plan.parent is not None:
        yield from _send_tagged(port, plan.parent, "reduce", acc, payload_bytes)
        acc = yield from _recv_tagged(port, plan.parent, "bcast")
    for child in plan.children:
        yield from _send_tagged(port, child, "bcast", acc, payload_bytes)
    return acc
