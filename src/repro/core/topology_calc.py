"""Host-side barrier plan computation.

The paper keeps the combinatorics on the host (Section 5.1): "The host at
a particular node needs to inform the NIC only of the children and parent
of the node, rather than all the nodes in the barrier."  These functions
compute, for one participant, exactly that neighborhood:

* :func:`pe_schedule` -- the ordered list of partners for the
  pairwise-exchange (PE) algorithm used by MPICH;
* :func:`gb_tree` -- parent and children in the fixed-dimension
  gather-and-broadcast (GB) tree.

Both take the barrier *group* as an ordered list of endpoints
``(node_id, port_id)``; a participant's rank is its index in that list.
All participants must pass the same list (standard collective contract).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.gm.tokens import PeStep

Endpoint = Tuple[int, int]


@dataclass(frozen=True)
class BarrierPlan:
    """One participant's neighborhood for a barrier instance.

    For PE: ``steps`` is the exchange order (``parent``/``children`` empty).
    For GB: ``parent`` is None at the root; ``children`` ordered.
    """

    algorithm: str
    rank: int
    group_size: int
    steps: Tuple[PeStep, ...] = ()
    parent: Optional[Endpoint] = None
    children: Tuple[Endpoint, ...] = ()

    @property
    def peers(self) -> Tuple[Endpoint, ...]:
        """PE: the endpoints touched, in step order."""
        return tuple(s.peer for s in self.steps)

    @property
    def is_root(self) -> bool:
        """GB: True at the root of the tree."""
        return self.algorithm == "gb" and self.parent is None


def _validate_group(group: Sequence[Endpoint], rank: int) -> None:
    if not group:
        raise ValueError("empty barrier group")
    if len(set(group)) != len(group):
        raise ValueError("duplicate endpoints in barrier group")
    if not 0 <= rank < len(group):
        raise ValueError(f"rank {rank} out of range for group of {len(group)}")


# ---------------------------------------------------------------------------
# Pairwise exchange (PE) -- the MPICH dissemination-by-doubling pattern
# ---------------------------------------------------------------------------
def pe_schedule(group_size: int, rank: int) -> List[dict]:
    """The PE step sequence for ``rank`` in a group of ``group_size``.

    Returns a list of step dicts.  For power-of-two groups each step is
    ``{"kind": "exchange", "peer": r}`` with ``peer = rank ^ 2**k``
    (Section 5.1: nodes pair up, exchange, groups merge, repeat).

    Non-power-of-two groups use the standard MPICH extension: with
    ``m = 2**floor(log2(n))``, the ``n - m`` *extra* ranks (>= m) first
    notify their proxy (``rank - m``) and wait for its release; ranks
    < m that have an extra partner absorb that notification, run the
    power-of-two exchange among themselves, then release the extra.
    """
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    if not 0 <= rank < group_size:
        raise ValueError("rank out of range")
    if group_size == 1:
        return []

    m = 1
    while m * 2 <= group_size:
        m *= 2

    steps: List[dict] = []
    if rank >= m:
        # Extra rank: notify proxy, then wait for its release.
        proxy = rank - m
        steps.append({"kind": "send", "peer": proxy})
        steps.append({"kind": "recv", "peer": proxy})
        return steps

    extra = rank + m if rank + m < group_size else None
    if extra is not None:
        steps.append({"kind": "recv", "peer": extra})
    k = 1
    while k < m:
        steps.append({"kind": "exchange", "peer": rank ^ k})
        k *= 2
    if extra is not None:
        steps.append({"kind": "send", "peer": extra})
    return steps


def pe_plan(group: Sequence[Endpoint], rank: int) -> BarrierPlan:
    """PE plan for ``rank``: the step list for the NIC PE engine.

    Power-of-two groups get pure exchanges (send + await-receive per
    step, the structure the paper describes).  Non-power-of-two groups
    additionally get the MPICH notify/release steps as send-only and
    recv-only entries; consecutive send+recv with the same peer (the
    extra rank's notify-then-wait) fuse into one exchange step, which is
    wire-equivalent and saves a firmware pass.
    """
    _validate_group(group, rank)
    n = len(group)
    schedule = pe_schedule(n, rank)
    steps: List[PeStep] = []
    for s in schedule:
        peer = group[s["peer"]]
        if s["kind"] == "exchange":
            steps.append(PeStep(peer, send=True, recv=True))
        elif s["kind"] == "send":
            steps.append(PeStep(peer, send=True, recv=False))
        else:
            steps.append(PeStep(peer, send=False, recv=True))
    # Fuse the extra rank's notify(send) + wait(recv) with the same peer:
    # sending then awaiting that peer is exactly one engine exchange step.
    fused: List[PeStep] = []
    for step in steps:
        if (
            fused
            and fused[-1].peer == step.peer
            and fused[-1].send
            and not fused[-1].recv
            and step.recv
            and not step.send
        ):
            fused[-1] = PeStep(step.peer, send=True, recv=True)
        else:
            fused.append(step)
    return BarrierPlan(algorithm="pe", rank=rank, group_size=n, steps=tuple(fused))


# ---------------------------------------------------------------------------
# Dissemination barrier (Hensgen/Finkel/Manber) -- our algorithmic extension
# ---------------------------------------------------------------------------
def dissemination_schedule(group_size: int, rank: int) -> List[dict]:
    """The dissemination-barrier rounds for ``rank``.

    Round ``k`` sends a notification to ``(rank + 2^k) mod n`` and awaits
    one from ``(rank - 2^k) mod n``; after ``ceil(log2 n)`` rounds every
    rank has transitively heard from every other.  Unlike PE it needs no
    proxy steps for non-power-of-two sizes -- the classic reason MPI
    implementations prefer it there.
    """
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    if not 0 <= rank < group_size:
        raise ValueError("rank out of range")
    steps: List[dict] = []
    distance = 1
    while distance < group_size:
        steps.append({
            "kind": "round",
            "send_to": (rank + distance) % group_size,
            "recv_from": (rank - distance) % group_size,
        })
        distance *= 2
    return steps


def dissemination_plan(group: Sequence[Endpoint], rank: int) -> BarrierPlan:
    """Dissemination plan as engine steps (send-only + recv-only pairs).

    Runs on the same NIC PE engine: each round becomes a send-only step
    to the +2^k peer followed by a recv-only step parked on the -2^k
    peer.  The plan's ``algorithm`` is therefore "pe" at the token level.
    """
    _validate_group(group, rank)
    n = len(group)
    steps: List[PeStep] = []
    for r in dissemination_schedule(n, rank):
        send_peer = group[r["send_to"]]
        recv_peer = group[r["recv_from"]]
        if send_peer == recv_peer:
            steps.append(PeStep(send_peer, send=True, recv=True))
        else:
            steps.append(PeStep(send_peer, send=True, recv=False))
            steps.append(PeStep(recv_peer, send=False, recv=True))
    return BarrierPlan(algorithm="pe", rank=rank, group_size=n, steps=tuple(steps))


# ---------------------------------------------------------------------------
# Gather-and-broadcast (GB) -- fixed-dimension tree
# ---------------------------------------------------------------------------
def gb_tree(
    group_size: int, rank: int, dimension: int
) -> Tuple[Optional[int], List[int]]:
    """Parent and children ranks in a ``dimension``-ary heap-shaped tree.

    Dimension ``d`` means each node has up to ``d`` children: node ``i``'s
    children are ``d*i + 1 .. d*i + d`` (the classic array heap layout),
    the root is rank 0.  ``dimension = 1`` degenerates to a chain,
    ``dimension = group_size - 1`` to a flat star -- the two extremes the
    paper sweeps between to find the best tree per system size.
    """
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    if not 0 <= rank < group_size:
        raise ValueError("rank out of range")
    if group_size > 1 and not 1 <= dimension <= group_size - 1:
        raise ValueError(
            f"dimension must be in 1..{group_size - 1}, got {dimension}"
        )
    if group_size == 1:
        return None, []
    parent = None if rank == 0 else (rank - 1) // dimension
    first = dimension * rank + 1
    children = [c for c in range(first, first + dimension) if c < group_size]
    return parent, children


def gb_plan(group: Sequence[Endpoint], rank: int, dimension: int) -> BarrierPlan:
    """GB plan for ``rank``: parent/children endpoints in the d-ary tree."""
    _validate_group(group, rank)
    n = len(group)
    if n == 1:
        return BarrierPlan(algorithm="gb", rank=rank, group_size=1)
    parent, children = gb_tree(n, rank, dimension)
    return BarrierPlan(
        algorithm="gb",
        rank=rank,
        group_size=n,
        parent=None if parent is None else group[parent],
        children=tuple(group[c] for c in children),
    )


def gb_tree_height(group_size: int, dimension: int) -> int:
    """Height of the d-ary tree (root = level 0); for latency models."""
    if group_size <= 1:
        return 0
    height = 0
    # Deepest node is rank group_size - 1; walk to the root.
    rank = group_size - 1
    while rank != 0:
        rank = (rank - 1) // dimension
        height += 1
    return height
