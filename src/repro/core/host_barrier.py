"""Host-based barrier baselines (the paper's comparison point).

These run the same PE and GB algorithms entirely at the host over plain
GM point-to-point messages: every intermediate message crosses the PCI
bus twice and waits for the host's polling loop, which is precisely the
per-step cost the NIC-based barrier eliminates (Figure 2a vs 2b).

Host-side message matching: messages may arrive out of order relative to
the algorithm's expectations (a fast peer's next-step message lands before
the slow peer's current-step one), so events are matched by source
endpoint + phase tag via ``GmPort.receive_where`` and its stash.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.topology_calc import dissemination_schedule, gb_plan, pe_schedule
from repro.gm.api import GmPort
from repro.gm.events import RecvEvent

Endpoint = Tuple[int, int]

#: Payload size of host barrier messages: 0 bytes, like the NIC-based
#: barrier's logical payload (the wire still carries the header).
_BARRIER_MSG_BYTES = 0


def _recv_from(port: GmPort, src: Endpoint, tag: str):
    """Wait for a barrier message from ``src`` with phase tag ``tag``."""
    event = yield from port.receive_where(
        lambda ev: isinstance(ev, RecvEvent)
        and (ev.src_node, ev.src_port) == src
        and isinstance(ev.payload, dict)
        and ev.payload.get("tag") == tag
    )
    return event


def _send_to(port: GmPort, dst: Endpoint, tag: str):
    yield from port.send_with_callback(
        dst_node=dst[0],
        dst_port=dst[1],
        size_bytes=_BARRIER_MSG_BYTES,
        payload={"tag": tag},
    )


def host_barrier_pe(port: GmPort, group: Sequence[Endpoint], rank: int):
    """Host-based pairwise-exchange barrier (MPICH pattern, Section 5.1)."""
    schedule = pe_schedule(len(group), rank)
    # Keep a standing pool of twice the per-barrier message count posted:
    # one set for this barrier plus one for early arrivals from peers
    # already running the *next* barrier (each peer can be at most one
    # barrier ahead).  A smaller pool deadlocks: an early next-barrier
    # message can consume the token owed to this barrier's last message,
    # leaving the blocked rank unable to ever receive it.
    expected = sum(1 for s in schedule if s["kind"] in ("exchange", "recv"))
    yield from port.ensure_receive_buffers(2 * expected)
    for step in schedule:
        peer = group[step["peer"]]
        if step["kind"] == "exchange":
            yield from _send_to(port, peer, "pe")
            yield from _recv_from(port, peer, "pe")
        elif step["kind"] == "send":
            yield from _send_to(port, peer, "pe")
        else:  # recv
            yield from _recv_from(port, peer, "pe")


def host_barrier_dissemination(
    port: GmPort, group: Sequence[Endpoint], rank: int
):
    """Host-based dissemination barrier (our algorithmic extension)."""
    schedule = dissemination_schedule(len(group), rank)
    yield from port.ensure_receive_buffers(2 * max(len(schedule), 1))
    for r in schedule:
        yield from _send_to(port, group[r["send_to"]], "dis")
        yield from _recv_from(port, group[r["recv_from"]], "dis")


def host_barrier_gb(
    port: GmPort, group: Sequence[Endpoint], rank: int, dimension: int
):
    """Host-based gather-and-broadcast barrier over a d-ary tree.

    Non-root: await gathers from all children, send gather to parent,
    await the broadcast, then forward it to the children.  The root turns
    the last gather around into broadcasts.  Broadcast sends are issued
    back-to-back, which lets them pipeline through the NIC -- the effect
    the paper credits for the host-based GB's relatively good showing.
    """
    plan = gb_plan(group, rank, dimension)
    expected = len(plan.children) + (1 if plan.parent is not None else 0)
    # Standing pool of 2x: see host_barrier_pe for the deadlock this
    # prevents across consecutive barriers.
    yield from port.ensure_receive_buffers(2 * expected)
    for child in plan.children:
        yield from _recv_from(port, child, "gather")
    if plan.parent is not None:
        yield from _send_to(port, plan.parent, "gather")
        yield from _recv_from(port, plan.parent, "bcast")
    for child in plan.children:
        yield from _send_to(port, child, "bcast")


def host_barrier(
    port: GmPort,
    group: Sequence[Endpoint],
    rank: int,
    algorithm: str = "pe",
    dimension: Optional[int] = None,
):
    """Host-based barrier, either algorithm (host generator)."""
    if len(group) == 1:
        return
    if algorithm == "pe":
        yield from host_barrier_pe(port, group, rank)
    elif algorithm == "dissemination":
        yield from host_barrier_dissemination(port, group, rank)
    elif algorithm == "gb":
        if dimension is None:
            dimension = 2 if len(group) > 2 else 1
        yield from host_barrier_gb(port, group, rank, dimension)
    else:
        raise ValueError(f"unknown barrier algorithm {algorithm!r}")
