"""The paper's contribution: NIC-based barrier synchronization.

* :mod:`repro.core.topology_calc` -- host-side computation of the PE
  exchange lists and GB trees (Section 5.1 argues this belongs on the
  host: "the tree construction is a relatively computationally intensive
  task which can easily be computed at the host").
* :mod:`repro.core.nic_barrier` -- the firmware extension: the barrier
  logic the SDMA and RDMA state machines execute (Section 5.2).
* :mod:`repro.core.host_barrier` -- the host-based PE and GB baselines the
  paper compares against (Section 6).
* :mod:`repro.core.barrier` -- the user-facing facade: initiate, fuzzy
  poll, complete.
"""

from repro.core.barrier import BarrierHandle, barrier, fuzzy_barrier
from repro.core.collectives import allreduce, bcast, reduce
from repro.core.host_barrier import host_barrier
from repro.core.host_collectives import host_allreduce, host_bcast, host_reduce
from repro.core.topology_calc import (
    BarrierPlan,
    dissemination_plan,
    dissemination_schedule,
    gb_plan,
    gb_tree,
    pe_plan,
    pe_schedule,
)

__all__ = [
    "BarrierHandle",
    "BarrierPlan",
    "allreduce",
    "barrier",
    "bcast",
    "dissemination_plan",
    "dissemination_schedule",
    "fuzzy_barrier",
    "gb_plan",
    "gb_tree",
    "host_allreduce",
    "host_barrier",
    "host_bcast",
    "host_reduce",
    "pe_plan",
    "pe_schedule",
    "reduce",
]
