"""User-facing barrier operations.

``barrier(...)`` is the blocking NIC-based barrier; ``fuzzy_barrier(...)``
returns a handle that separates initiation from completion so the host
can compute while the NIC runs the barrier (the fuzzy barrier of
Gupta '89 that Section 1 highlights: "Because the barrier algorithm is
performed at the NIC, the processor is free to perform computation while
polling for the barrier to complete").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.topology_calc import (
    BarrierPlan,
    dissemination_plan,
    gb_plan,
    pe_plan,
)
from repro.gm.api import GmPort
from repro.gm.events import BarrierCompletedEvent

Endpoint = Tuple[int, int]


def make_plan(
    group: Sequence[Endpoint],
    rank: int,
    algorithm: str = "pe",
    dimension: Optional[int] = None,
) -> BarrierPlan:
    """Compute this rank's barrier plan (host-side, Section 5.1)."""
    if algorithm == "pe":
        return pe_plan(group, rank)
    if algorithm == "dissemination":
        return dissemination_plan(group, rank)
    if algorithm == "gb":
        if dimension is None:
            # A reasonable default fan-out; benches sweep it explicitly.
            dimension = 2 if len(group) > 2 else 1
        return gb_plan(group, rank, dimension)
    raise ValueError(f"unknown barrier algorithm {algorithm!r}")


def barrier(
    port: GmPort,
    group: Sequence[Endpoint],
    rank: int,
    algorithm: str = "pe",
    dimension: Optional[int] = None,
):
    """Blocking NIC-based barrier (host generator).

    Provides the completion buffer, initiates the barrier on the NIC and
    polls ``gm_receive`` until the GM_BARRIER_COMPLETED_EVENT arrives.
    Returns the completion event.
    """
    plan = make_plan(group, rank, algorithm, dimension)
    yield from port.provide_barrier_buffer()
    token = yield from port.barrier_send_with_callback(plan)
    event = yield from port.receive_where(
        lambda ev: isinstance(ev, BarrierCompletedEvent)
        and ev.barrier_seq == token.barrier_seq
    )
    return event


@dataclass
class BarrierHandle:
    """An initiated-but-not-yet-completed barrier (fuzzy barrier)."""

    port: GmPort
    barrier_seq: int
    completed: bool = False
    completion_event: Optional[BarrierCompletedEvent] = None

    def _matches(self, ev) -> bool:
        return (
            isinstance(ev, BarrierCompletedEvent)
            and ev.barrier_seq == self.barrier_seq
        )

    def test(self):
        """Non-blocking completion poll (host generator -> bool).

        One polling-delay charge per call, exactly the cost structure of
        a host spinning on gm_receive between computation chunks.
        """
        if self.completed:
            return True
        # Check stashed events first (another receive may have buffered it).
        for i, ev in enumerate(self.port._stash):
            if self._matches(ev):
                del self.port._stash[i]
                self.completed = True
                self.completion_event = ev
                return True
        ev = yield from self.port.try_receive()
        if ev is None:
            return False
        if self._matches(ev):
            self.completed = True
            self.completion_event = ev
            return True
        from repro.gm.events import SentEvent

        if not isinstance(ev, SentEvent):
            self.port._stash.append(ev)
        return False

    def wait(self):
        """Block until the barrier completes (host generator)."""
        if self.completed:
            return self.completion_event
        ev = yield from self.port.receive_where(self._matches)
        self.completed = True
        self.completion_event = ev
        return ev


def fuzzy_barrier(
    port: GmPort,
    group: Sequence[Endpoint],
    rank: int,
    algorithm: str = "pe",
    dimension: Optional[int] = None,
):
    """Initiate a NIC-based barrier and return immediately (host generator
    -> :class:`BarrierHandle`).

    The caller may interleave computation with ``handle.test()`` polls and
    finish with ``handle.wait()``.
    """
    plan = make_plan(group, rank, algorithm, dimension)
    yield from port.provide_barrier_buffer()
    token = yield from port.barrier_send_with_callback(plan)
    return BarrierHandle(port=port, barrier_seq=token.barrier_seq)
