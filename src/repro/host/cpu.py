"""Host processor cost model.

All values in microseconds of host-CPU time.  ``extra_overhead_us`` models
an additional messaging layer (e.g. MPI over GM): the paper predicts from
Equation 3 that "as the host send overhead increases, say from the
addition of another programming layer such as MPI, the factor of
improvement will increase" -- the MPI-overhead sweep bench raises exactly
this knob.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class HostParams:
    """Per-operation host CPU costs (microseconds)."""

    #: ``gm_send_with_callback``: fill in + queue a send token.  Together
    #: with the NIC's token-detect latency this forms the ``Send`` term.
    send_cost_us: float = 4.75
    #: ``HRecv``: process a received message after the NIC's DMA.
    recv_cost_us: float = 5.75
    #: Average detection latency of the gm_receive polling loop.
    poll_delay_us: float = 1.0
    #: Processing a returned send token (send-completion event).
    sent_event_cost_us: float = 0.6
    #: Posting a receive buffer / barrier buffer to the NIC.
    buffer_post_cost_us: float = 0.4
    #: Host-side barrier setup: computing the PE schedule or GB tree
    #: neighborhood before handing it to the NIC (Section 5.1 keeps this
    #: on the host because it is cheap there).
    barrier_setup_cost_us: float = 1.2
    #: Extra per-message overhead of a higher layer (MPI-style), added to
    #: every send initiation and every received-message processing.
    extra_overhead_us: float = 0.0
    #: Host processors per node (the testbed was dual-CPU).
    num_cpus: int = 2

    def with_(self, **changes) -> "HostParams":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    @property
    def effective_send_cost_us(self) -> float:
        """Send-initiation cost including any layered overhead."""
        return self.send_cost_us + self.extra_overhead_us

    @property
    def effective_recv_cost_us(self) -> float:
        """HRecv cost including any layered overhead."""
        return self.recv_cost_us + self.extra_overhead_us
