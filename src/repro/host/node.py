"""A cluster node: host CPU(s) + one NIC + the GM driver."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.gm.memory import PinnedMemoryRegistry
from repro.host.cpu import HostParams
from repro.sim.engine import Simulator
from repro.sim.primitives import Resource, Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.gm.driver import GmDriver
    from repro.nic.nic import Nic


class Node:
    """One workstation of the cluster."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        nic: "Nic",
        host_params: Optional[HostParams] = None,
        max_pinned_bytes: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.nic = nic
        self.params = host_params or HostParams()
        self.cpu = Resource(
            sim, capacity=self.params.num_cpus, name=f"node{node_id}.cpu"
        )
        self.memory = PinnedMemoryRegistry(node_id, max_pinned_bytes)
        #: Host processes running on this node (registered by the cluster
        #: runner) so a fail-stop NodeCrash can kill them with the NIC.
        self.programs: list = []
        # Imported lazily to avoid a cycle (driver needs Node for typing).
        from repro.gm.driver import GmDriver

        self.driver: "GmDriver" = GmDriver(self)

    def cpu_use(self, duration_us: float):
        """Charge host CPU time (generator for host-context processes)."""
        if duration_us < 0:
            raise ValueError("negative host CPU time")
        if duration_us == 0:
            return
        yield from self.cpu.use(duration_us)

    def compute(self, duration_us: float):
        """Application compute phase occupying one CPU (for fuzzy-barrier
        and BSP examples)."""
        yield from self.cpu.use(duration_us)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.node_id}>"
