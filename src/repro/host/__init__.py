"""Host-side model: CPU cost parameters, nodes, application processes.

The testbed hosts were dual 300 MHz Pentium II machines; what matters for
the barrier comparison is the per-message host overhead (the ``Send`` and
``HRecv`` terms of Equations 1--2) and the polling delay of ``gm_receive``,
which :class:`~repro.host.cpu.HostParams` captures.
"""

from repro.host.cpu import HostParams
from repro.host.node import Node

__all__ = ["HostParams", "Node"]
