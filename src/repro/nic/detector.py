"""NIC-resident heartbeat failure detector (fail-stop crashes).

The Myrinet/GM reliability design assumes every peer is alive forever:
a dead node leaves every barrier algorithm hanging until the
retransmission limit finally alarms.  This module gives each NIC the
liveness component that turns hangs into prompt, typed failures:

* **Piggybacked liveness** -- every packet delivered to the NIC
  refreshes the sender's ``last_seen`` stamp (``saw``), and every packet
  the NIC injects refreshes the destination's ``last_sent`` stamp
  (``sent``).  Both are plain attribute writes scheduling no events, so
  a run without an armed detector is bit-identical to a run before the
  detector existed.
* **Explicit HEARTBEAT packets** -- a periodic tick (every
  ``heartbeat_us``) sends a fire-and-forget ``HEARTBEAT`` packet to
  each peer the NIC has been send-idle toward, keeping the all-to-all
  liveness mesh alive through application quiet periods.
* **Suspicion** -- a peer not heard from within ``suspect_after`` is
  declared *suspect*, permanently (fail-stop: once suspect, always
  suspect).  Suspicion fans out through
  :meth:`repro.nic.nic.Nic.on_peer_suspected`: reliability streams
  toward the suspect are abandoned, in-flight barriers involving it are
  aborted, and every open port gets a
  :class:`~repro.gm.events.PeerFailureEvent`.

Activity horizon: an armed detector keeps the event loop alive (its
ticks and heartbeats are events), so drain-to-completion runs need it to
go quiet eventually.  ``arm(active_until=...)`` bounds the detector's
active window -- the fault controller derives the bound from the plan's
last crash time -- after which the tick stops re-arming.  Arming with
``active_until=None`` keeps the detector running forever; such runs must
be bounded by ``until=``/``max_events=``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set

from repro.network.packet import PacketType

if TYPE_CHECKING:  # pragma: no cover
    from repro.nic.nic import Nic


class FailureDetector:
    """Heartbeat-based fail-stop failure detector for one NIC."""

    def __init__(self, nic: "Nic", heartbeat_us: float,
                 suspect_after: float) -> None:
        if heartbeat_us <= 0:
            raise ValueError("heartbeat_us must be positive")
        if suspect_after <= heartbeat_us:
            raise ValueError("suspect_after must exceed heartbeat_us")
        self.nic = nic
        self.sim = nic.sim
        self.heartbeat_us = heartbeat_us
        self.suspect_after = suspect_after
        #: peer node id -> last simulated time any packet from it arrived.
        self.last_seen: Dict[int, float] = {}
        #: peer node id -> last simulated time we injected anything to it.
        self.last_sent: Dict[int, float] = {}
        #: Monotone suspect set (fail-stop: no rehabilitation).
        self.suspects: Set[int] = set()
        #: peer node id -> simulated time the suspicion was declared
        #: (what the reliability bench reads for time-to-detect).
        self.suspected_at: Dict[int, float] = {}
        self.heartbeats_sent = 0
        self.armed = False
        self.active_until: Optional[float] = None
        self._stopped = False
        self._tick_pending = False
        metrics = nic.sim.metrics
        metrics.observe(
            f"nic{nic.node_id}.fd.suspects", lambda: len(self.suspects)
        )
        metrics.observe(
            f"nic{nic.node_id}.fd.heartbeats", lambda: self.heartbeats_sent
        )
        tel = nic.sim.telemetry
        if tel.enabled:
            tel.register(
                f"nic{nic.node_id}.fd.suspects",
                lambda: float(len(self.suspects)),
                component=f"nic{nic.node_id}.fd",
                unit="peers",
            )

    # ------------------------------------------------------------------
    def arm(self, active_until: Optional[float] = None) -> None:
        """Start (or extend) the detector's periodic tick.

        Re-arming is idempotent; a finite ``active_until`` overrides an
        unset one and extends a smaller one (never shortens a finite
        window -- later crashes in a plan push the horizon out).
        """
        if self._stopped:
            return
        if active_until is not None:
            if self.active_until is None or active_until > self.active_until:
                self.active_until = active_until
        if not self.armed:
            self.armed = True
            self._schedule_tick()

    def stop(self) -> None:
        """Permanently silence the detector (shutdown / own crash)."""
        self._stopped = True
        self.armed = False

    # -- piggyback hooks (plain writes; called per packet when armed) ----
    def saw(self, src_node: int) -> None:
        """A packet from ``src_node`` arrived: it was alive when sent."""
        self.last_seen[src_node] = self.sim.now

    def sent(self, dst_node: int) -> None:
        """We injected a packet toward ``dst_node`` (heartbeat suppressor)."""
        self.last_sent[dst_node] = self.sim.now

    # ------------------------------------------------------------------
    def _schedule_tick(self) -> None:
        if not self._tick_pending:
            self._tick_pending = True
            self.sim.schedule(self.heartbeat_us, self._tick)

    def _tick(self) -> None:
        self._tick_pending = False
        if self._stopped or not self.armed:
            return
        nic = self.nic
        now = self.sim.now
        for peer in nic.network.nic_ids():
            if peer == nic.node_id or peer in self.suspects:
                continue
            # Grace for peers first observed now: the suspicion window
            # starts at discovery, not at simulated time zero.
            seen = self.last_seen.setdefault(peer, now)
            if now - seen > self.suspect_after:
                self._suspect(peer)
                continue
            if now - self.last_sent.get(peer, -self.heartbeat_us) \
                    >= self.heartbeat_us:
                self._send_heartbeat(peer)
        if self.active_until is not None and now >= self.active_until:
            self.armed = False
            return
        self._schedule_tick()

    def _send_heartbeat(self, peer: int) -> None:
        nic = self.nic
        packet = nic.make_packet(
            PacketType.HEARTBEAT,
            dst_node=peer,
            dst_port=0,
            src_port=0,
        )
        self.last_sent[peer] = self.sim.now
        self.heartbeats_sent += 1
        nic.send_queue.put((packet, False))

    def _suspect(self, peer: int) -> None:
        self.suspects.add(peer)
        self.suspected_at[peer] = self.sim.now
        nic = self.nic
        if nic.tracer is not None:
            nic.tracer.record(
                f"nic{nic.node_id}", "fd.suspect", peer=peer,
                last_seen=self.last_seen.get(peer),
                suspect_after=self.suspect_after,
            )
        nic.on_peer_suspected(peer)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "armed" if self.armed else "idle"
        return (
            f"<FailureDetector nic{self.nic.node_id} {state} "
            f"suspects={sorted(self.suspects)}>"
        )
