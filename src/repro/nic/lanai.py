"""LANai processor cost model.

Every MCP firmware action is assigned a cycle count; wall time is
``cycles / clock_mhz`` microseconds.  The cycle counts are calibrated (see
:mod:`repro.analysis.calibration`) so that the end-to-end host-based and
NIC-based barrier latencies land on the paper's measured anchors for the
LANai 4.3 and 7.2 cards; the *same* cycle table with a different clock
reproduces both generations, which is exactly the paper's claim that the
improvement scales with NIC processor speed.

Why GB operations cost more cycles than PE operations: the paper observes
(Section 6) that the NIC-based GB barrier loses to the *host*-based GB
barrier at two nodes "because of the overhead of processing the barrier
algorithm at the NIC".  The GB firmware path walks child lists, maintains
the gather-pending set and serially re-queues the send token once per
child in the broadcast phase, all in firmware on a 33 MHz processor,
whereas the PE path is a single index increment.  The calibrated tables
encode that asymmetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

#: Canonical operation names charged against the NIC processor.
OPERATIONS = (
    # SDMA state machine
    "poll_detect",          # notice a freshly queued host send token
    "token_process",        # dequeue + validate a send token, pick connection
    "dma_setup",            # program one DMA transfer
    "packet_prep",          # build a data packet header in SRAM
    "send_queue_manage",    # sent-list / connection-queue bookkeeping
    # SEND state machine
    "send_dispatch",        # hand a prepared packet to the wire interface
    # RECV state machine
    "recv_packet",          # receive + validate + CRC-check a data packet
    "recv_barrier",         # receive a barrier packet (no token matching)
    "recv_control",         # process an ACK/NACK/BARRIER_ACK/REJECT
    # RDMA state machine
    "rdma_process",         # match receive token, program host-bound DMA
    "post_event",           # build + DMA a receive-queue event to the host
    "ack_gen",              # prepare an ACK/NACK packet
    # Barrier extension, PE path (Section 5.2)
    "barrier_initiate",     # process a barrier send token from the host
    "barrier_packet_prep",  # update token, write next dest, build packet
    "barrier_check",        # test one unexpected-record bit
    "barrier_record",       # set one unexpected-record bit
    "barrier_advance",      # clear bit, bump node_index, re-queue token
    "barrier_complete",     # finish: clear port pointer, prep notification
    # Barrier extension, GB-specific costs
    "gb_initiate",          # process a GB barrier send token (tree setup)
    "coll_combine",         # apply the reduction operator to one value
    "gb_gather_check",      # scan children bits / gather-pending handling
    "gb_token_requeue",     # update + re-queue the token for the next child
)


@dataclass(frozen=True)
class LanaiModel:
    """A LANai generation: clock speed + cycle cost table."""

    name: str
    clock_mhz: float
    cycles: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = [op for op in OPERATIONS if op not in self.cycles]
        if missing:
            raise ValueError(f"{self.name}: missing cycle costs for {missing}")
        unknown = [op for op in self.cycles if op not in OPERATIONS]
        if unknown:
            raise ValueError(f"{self.name}: unknown operations {unknown}")
        if self.clock_mhz <= 0:
            raise ValueError("clock must be positive")

    def time(self, operation: str) -> float:
        """Cost of ``operation`` in microseconds on this card."""
        try:
            return self.cycles[operation] / self.clock_mhz
        except KeyError:
            raise KeyError(f"unknown NIC operation {operation!r}") from None

    def with_clock(self, clock_mhz: float, name: str | None = None) -> "LanaiModel":
        """Same firmware on a faster/slower processor."""
        return replace(
            self, clock_mhz=clock_mhz, name=name or f"{self.name}@{clock_mhz}MHz"
        )


#: Shared firmware cycle table (the firmware is the same across cards; the
#: clock is what differs).  Values calibrated against the paper's Figure 5
#: anchors -- see analysis/calibration.py and EXPERIMENTS.md.
_GM_FIRMWARE_CYCLES: Dict[str, int] = {
    "poll_detect": 100,
    "token_process": 120,
    "dma_setup": 90,
    "packet_prep": 95,
    "send_queue_manage": 60,
    "send_dispatch": 85,
    "recv_packet": 180,
    "recv_barrier": 100,
    "recv_control": 110,
    "rdma_process": 100,
    "post_event": 55,
    "ack_gen": 100,
    "barrier_initiate": 70,
    "barrier_packet_prep": 130,
    "barrier_check": 55,
    "barrier_record": 55,
    "barrier_advance": 190,
    "barrier_complete": 80,
    "gb_initiate": 1075,
    "coll_combine": 140,
    "gb_gather_check": 50,
    "gb_token_requeue": 60,
}


#: LANai 4.3: 33 MHz processor (the paper's 16-node system).
LANAI_4_3 = LanaiModel(name="LANai 4.3", clock_mhz=33.0, cycles=dict(_GM_FIRMWARE_CYCLES))

#: LANai 7.2: 66 MHz processor (the paper's 8-node system).
LANAI_7_2 = LanaiModel(name="LANai 7.2", clock_mhz=66.0, cycles=dict(_GM_FIRMWARE_CYCLES))

#: LANai 9.x: 132 MHz, the top of the range the paper quotes ("Myrinet NIC
#: processor speeds range from 33MHz to 132MHz"); used by the scaling
#: extrapolation bench.
LANAI_9_2 = LanaiModel(name="LANai 9.2", clock_mhz=132.0, cycles=dict(_GM_FIRMWARE_CYCLES))
