"""LANai NIC model: hardware resources plus the MCP firmware.

The NIC is where the paper's contribution lives.  The model has three
layers:

* :mod:`repro.nic.lanai` -- per-generation cost tables: each firmware
  operation costs a number of LANai processor cycles, converted to
  microseconds by the card's clock (33 MHz for LANai 4.3, 66 MHz for
  LANai 7.2).  This single lever reproduces the paper's central
  observation that a faster NIC processor raises the NIC-based barrier's
  factor of improvement.
* :mod:`repro.nic.dma`, :mod:`repro.nic.buffers` -- the two DMA engines
  contending for the PCI bus, and the SRAM packet-buffer pools.
* :mod:`repro.nic.mcp` -- the Myrinet Control Program: the SDMA, SEND,
  RECV and RDMA state machines (Figure 4 of the paper) sharing the NIC
  processor, including the barrier extension hooks of Section 5.2.
"""

from repro.nic.buffers import BufferPool
from repro.nic.dma import DmaEngine
from repro.nic.lanai import LANAI_4_3, LANAI_7_2, LANAI_9_2, LanaiModel
from repro.nic.nic import Nic, NicParams

__all__ = [
    "BufferPool",
    "DmaEngine",
    "LANAI_4_3",
    "LANAI_7_2",
    "LANAI_9_2",
    "LanaiModel",
    "Nic",
    "NicParams",
]
