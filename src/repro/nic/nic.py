"""The NIC: hardware resources, port/connection state, MCP machines.

One :class:`Nic` per node (the paper's system model allows several per
node; the cluster builder wires one by default and tests exercise the
general shape through port multiplexing, which is what the paper's
concurrent-barrier design issue is about).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, Optional

from repro.gm.constants import MAX_PORTS, BarrierReliability
from repro.gm.events import GmEvent, PeerFailureEvent, SentEvent
from repro.gm.port import NicPort
from repro.gm.tokens import BarrierSendToken, SendToken
from repro.network.fabric import Network
from repro.network.packet import Packet, PacketType
from repro.nic.buffers import BufferPool
from repro.nic.dma import DmaEngine
from repro.nic.lanai import LanaiModel
from repro.nic.mcp.connection import Connection
from repro.nic.mcp.rdma import RdmaMachine
from repro.nic.mcp.recv import RecvMachine
from repro.nic.mcp.sdma import SdmaMachine
from repro.nic.mcp.send import SendMachine
from repro.sim.engine import Simulator
from repro.sim.primitives import Resource, Store
from repro.sim.tracing import TraceContext, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.nic_barrier import NicBarrierEngine


class RetransmitLimitExceeded(RuntimeError):
    """A reliability stream gave up: an unacked packet was retransmitted
    ``NicParams.max_retransmits`` times without progress.

    This is the *alarm* half of the give-up-or-recover contract: an
    injected fault (or a real protocol bug) that makes recovery
    impossible must surface as a loud error, never a silent hang.
    """

    def __init__(self, node_id: int, remote_node: int, stream: str,
                 seqno: int, retransmits: int) -> None:
        super().__init__(
            f"nic{node_id}: {stream} stream to node {remote_node} gave up "
            f"on seqno {seqno} after {retransmits} retransmissions "
            "(peer unreachable or reliability protocol wedged)"
        )
        self.node_id = node_id
        self.remote_node = remote_node
        #: Alias for :attr:`remote_node`: the peer this stream gave up on,
        #: so crash hangs are attributable straight off the exception.
        self.peer = remote_node
        self.stream = stream
        self.seqno = seqno
        self.retransmits = retransmits
        #: Flight-recorder ring at the moment of the alarm.  Always a
        #: list (empty without a tracer), never None.
        self.flight_records: list = []


@dataclass(frozen=True)
class NicParams:
    """NIC configuration knobs (beyond the LANai cost model)."""

    #: PCI bus: 32-bit/33 MHz of the testbed era.
    pci_bandwidth_mbps: float = 133.0
    #: Per-DMA bus-transaction overhead.
    pci_setup_us: float = 0.9
    #: SRAM packet-buffer pools.
    tx_buffers: int = 16
    rx_buffers: int = 32
    buffer_bytes: int = 4096
    #: Regular-stream go-back-N retransmission timeout.
    retransmit_timeout_us: float = 1500.0
    #: Give-up threshold for both reliability streams: when one entry has
    #: been retransmitted this many times without being acknowledged the
    #: NIC raises :class:`RetransmitLimitExceeded` instead of retrying
    #: forever.  None disables the alarm (the pre-hardening behaviour).
    max_retransmits: Optional[int] = 64
    #: Delayed-ACK coalescing window (GM acks lazily / piggybacked rather
    #: than per packet).  0 acks every packet immediately.
    ack_delay_us: float = 12.0
    #: SEPARATE-mode barrier retransmission timeout.
    barrier_retransmit_timeout_us: float = 800.0
    #: How barrier messages are protected (Section 4.4).
    barrier_reliability: BarrierReliability = BarrierReliability.UNRELIABLE
    #: Section 3.4 optimization: barrier "messages" between two ports of
    #: the *same* NIC skip the wire and just set the local flag.
    local_barrier_optimization: bool = False
    #: Failure-detector heartbeat period.  None (the default) builds the
    #: NIC *without* a detector, keeping clean runs bit-identical to
    #: pre-detector traces.  Setting it arms the detector for the whole
    #: run (bound such runs with ``until=``/``max_events=``); fault plans
    #: with crashes arm it automatically over a bounded window instead.
    heartbeat_us: Optional[float] = None
    #: Silence window after which a peer is declared failed (fail-stop).
    #: Defaults to ``8 * heartbeat_us`` when only the heartbeat is set.
    suspect_after: Optional[float] = None

    def with_(self, **changes) -> "NicParams":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


class Nic:
    """A programmable LANai NIC attached to the fabric."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        model: LanaiModel,
        network: Network,
        params: Optional[NicParams] = None,
        tracer: Optional[Tracer] = None,
        num_ports: int = MAX_PORTS,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.model = model
        self.network = network
        self.params = params or NicParams()
        self.tracer = tracer
        self.num_ports = num_ports

        # -- hardware resources ---------------------------------------------
        self.cpu_resource = Resource(sim, 1, name=f"nic{node_id}.cpu")
        self.pci_bus = Resource(sim, 1, name=f"nic{node_id}.pci")
        self.sdma_engine = DmaEngine(
            sim, self.pci_bus, self.params.pci_bandwidth_mbps,
            self.params.pci_setup_us, name=f"nic{node_id}.sdma",
        )
        self.rdma_engine = DmaEngine(
            sim, self.pci_bus, self.params.pci_bandwidth_mbps,
            self.params.pci_setup_us, name=f"nic{node_id}.rdma",
        )
        self.sdma_engine.tracer = tracer
        self.rdma_engine.tracer = tracer
        self.tx_buffers = BufferPool(
            sim, self.params.tx_buffers, self.params.buffer_bytes,
            name=f"nic{node_id}.tx",
        )
        self.rx_buffers = BufferPool(
            sim, self.params.rx_buffers, self.params.buffer_bytes,
            name=f"nic{node_id}.rx",
        )

        # -- protocol state ----------------------------------------------------
        self.ports: Dict[int, NicPort] = {
            pid: NicPort(sim, node_id, pid) for pid in range(num_ports)
        }
        self._connections: Dict[int, Connection] = {}
        #: Give-up alarms raised by the reliability streams (each entry is
        #: the :class:`RetransmitLimitExceeded` that was raised).
        self.alarms: list = []
        #: port_id -> host-event listeners (the MCP progress hook: called
        #: synchronously, after the event lands in the port's event ring).
        self._host_event_listeners: Dict[int, list] = {}

        # -- inter-machine queues ---------------------------------------------
        self.sdma_inbox: Store = Store(sim, name=f"nic{node_id}.sdma_inbox")
        self.send_queue: Store = Store(sim, name=f"nic{node_id}.send_q")
        self.recv_queue: Store = Store(sim, name=f"nic{node_id}.recv_q")
        self.rdma_queue: Store = Store(sim, name=f"nic{node_id}.rdma_q")

        # -- fabric attachment ---------------------------------------------------
        self.tx_channel = network.attach_nic(node_id, self)

        # -- the barrier extension (the paper's contribution) ---------------------
        from repro.core.nic_barrier import NicBarrierEngine
        from repro.core.nic_collectives import NicCollectiveEngine

        self.barrier_engine: "NicBarrierEngine" = NicBarrierEngine(self)
        #: NIC-based reduce/allreduce/bcast (the Section 8 extension).
        self.collective_engine: "NicCollectiveEngine" = NicCollectiveEngine(self)

        # -- the four MCP state machines -------------------------------------------
        self.sdma_machine = SdmaMachine(self)
        self.send_machine = SendMachine(self)
        self.recv_machine = RecvMachine(self)
        self.rdma_machine = RdmaMachine(self)

        # -- fail-stop state ---------------------------------------------------
        #: Set by :meth:`crash`: a crashed NIC neither receives nor injects.
        self.crashed = False
        #: Peers declared failed by the detector (monotone suspect set;
        #: the RECV machine's epoch fence drops their late packets).
        self.suspected_peers: set = set()
        #: Heartbeat failure detector; None unless ``heartbeat_us`` is
        #: configured or a crash-bearing fault plan arms one.
        self.detector = None
        if self.params.heartbeat_us is not None:
            from repro.nic.detector import FailureDetector

            suspect_after = self.params.suspect_after
            if suspect_after is None:
                suspect_after = 8.0 * self.params.heartbeat_us
            self.detector = FailureDetector(
                self, self.params.heartbeat_us, suspect_after
            )
            self.detector.arm()

        self._register_metrics()
        self._register_telemetry()

    def _register_telemetry(self) -> None:
        """Register this NIC's sampled time-series probes.

        Like :meth:`_register_metrics` these read only the plain
        attributes that are always maintained (``Resource.busy_us``,
        ``len(Store)``, DMA transfer totals) -- never metrics
        instruments, which are null objects when the metrics flag is
        off.  A disabled sampler drops every registration.
        """
        tel = self.sim.telemetry
        if not tel.enabled:
            return
        prefix = f"nic{self.node_id}"
        # busy_us is monotone; sampled as a counter the per-interval
        # rate is the LANai processor's utilization over that window.
        tel.register(
            f"{prefix}.cpu.util",
            lambda: self.cpu_resource.busy_us,
            kind="counter",
            component=f"{prefix}.cpu",
            unit="frac",
        )
        for store_name, store in (
            ("sdma_inbox", self.sdma_inbox),
            ("send_q", self.send_queue),
            ("recv_q", self.recv_queue),
            ("rdma_q", self.rdma_queue),
        ):
            tel.register(
                f"{prefix}.{store_name}.depth",
                lambda s=store: float(len(s)),
                component=f"{prefix}.cpu",
                unit="items",
            )
        # DMA backlog: requests waiting on (or holding) the shared PCI
        # bus -- the contention signal behind the pci_wait_us histogram.
        tel.register(
            f"{prefix}.dma.backlog",
            lambda: float(self.pci_bus.queued + self.pci_bus.in_use),
            component=f"{prefix}.dma",
            unit="reqs",
        )
    def _register_metrics(self) -> None:
        """Expose this NIC's counters to the simulation metrics registry.

        All sources are the plain attributes the NIC already keeps;
        nothing here runs until a snapshot is taken (and a disabled
        registry drops the registrations outright).
        """
        metrics = self.sim.metrics
        prefix = f"nic{self.node_id}"
        #: Time from a packet's first transmission to its (eventual) ACK,
        #: observed only for packets that needed retransmission -- the
        #: per-NIC time-to-recover distribution.  A null instrument when
        #: the registry is disabled.
        self.recovery_hist = metrics.histogram(f"{prefix}.recovery_us")
        if not metrics.enabled:
            return
        metrics.observe(
            f"{prefix}.cpu.busy_us", lambda: self.cpu_resource.busy_us
        )
        metrics.observe(
            f"{prefix}.cpu.utilization", lambda: self.cpu_resource.utilization()
        )
        for store_name, store in (
            ("sdma_inbox", self.sdma_inbox),
            ("send_q", self.send_queue),
            ("recv_q", self.recv_queue),
            ("rdma_q", self.rdma_queue),
        ):
            metrics.observe(
                f"{prefix}.{store_name}.depth_hw",
                lambda s=store: s.max_depth,
            )
        metrics.observe(
            f"{prefix}.retransmits",
            lambda: sum(
                c.packets_retransmitted for c in self._connections.values()
            ),
        )
        # Recovery-path counters (drops are counted on the links; these
        # are the receive/acknowledge sides of the same story).
        for counter in (
            "packets_acked",
            "duplicates_dropped",
            "future_dropped",
            "nacks_sent",
        ):
            metrics.observe(
                f"{prefix}.{counter}",
                lambda attr=counter: sum(
                    getattr(c, attr) for c in self._connections.values()
                ),
            )
        metrics.observe(
            f"{prefix}.retransmit_alarms", lambda: len(self.alarms)
        )
        metrics.observe(
            f"{prefix}.peers_suspected", lambda: len(self.suspected_peers)
        )
        metrics.observe(
            f"{prefix}.gbn_window_hw",
            lambda: max(
                (c.sent_list_high_water for c in self._connections.values()),
                default=0,
            ),
        )
        metrics.observe(
            f"{prefix}.barrier_window_hw",
            lambda: max(
                (
                    c.barrier_unacked_high_water
                    for c in self._connections.values()
                ),
                default=0,
            ),
        )

    # ------------------------------------------------------------------
    # Fabric interface
    # ------------------------------------------------------------------
    def receive_packet(self, packet: Packet) -> None:
        """Wire delivery point (the fabric calls this)."""
        if self.crashed:
            return
        if self.detector is not None:
            self.detector.saw(packet.src_node)
        self.recv_queue.put(packet)

    def inject(self, packet: Packet) -> None:
        """Hand a prepared packet to the transmit channel."""
        if self.crashed:
            return
        if self.detector is not None:
            self.detector.sent(packet.dst_node)
        packet.injected_at = self.sim.now
        self.tx_channel.send(packet)

    # ------------------------------------------------------------------
    # Factories and accessors
    # ------------------------------------------------------------------
    def connection(self, remote_node: int) -> Connection:
        """The (lazily created) connection state toward a peer node."""
        conn = self._connections.get(remote_node)
        if conn is None:
            conn = Connection(self.sim, self.node_id, remote_node, self.num_ports)
            self._connections[remote_node] = conn
        return conn

    @property
    def connections(self) -> Dict[int, Connection]:
        """All live connections, keyed by remote node id."""
        return self._connections

    def port(self, port_id: int) -> NicPort:
        """The port structure for ``port_id`` (raises if out of range)."""
        try:
            return self.ports[port_id]
        except KeyError:
            raise ValueError(
                f"NIC {self.node_id} has no port {port_id} "
                f"(0..{self.num_ports - 1})"
            ) from None

    def make_packet(
        self,
        ptype: PacketType,
        dst_node: int,
        dst_port: int,
        src_port: int,
        seqno: int = 0,
        payload_bytes: int = 0,
        payload: Optional[dict] = None,
        ctx: Optional[TraceContext] = None,
    ) -> Packet:
        """Build a packet with its source route stamped."""
        return Packet(
            ptype=ptype,
            src_node=self.node_id,
            src_port=src_port,
            dst_node=dst_node,
            dst_port=dst_port,
            seqno=seqno,
            payload_bytes=payload_bytes,
            payload=payload or {},
            route=self.network.route_for(self.node_id, dst_node),
            ctx=ctx,
        )

    def clone_packet(self, packet: Packet) -> Packet:
        """Fresh copy for retransmission (routes are consumed in flight).

        The clone keeps the original's trace id but bumps the attempt
        counter and resets the hop count, so a retransmitted packet stays
        inside the same span tree while remaining distinguishable.
        """
        return Packet(
            ptype=packet.ptype,
            src_node=packet.src_node,
            src_port=packet.src_port,
            dst_node=packet.dst_node,
            dst_port=packet.dst_port,
            seqno=packet.seqno,
            payload_bytes=packet.payload_bytes,
            payload=dict(packet.payload),
            route=self.network.route_for(self.node_id, packet.dst_node),
            ctx=packet.ctx.retry() if packet.ctx is not None else None,
        )

    # ------------------------------------------------------------------
    # Host-facing entry points (called by the GM API layer)
    # ------------------------------------------------------------------
    def post_token(self, port_id: int, token) -> None:
        """A host process queued a send token.

        The token becomes visible to the SDMA machine after its polling
        detection latency -- the NIC half of the paper's ``Send`` term.
        """
        token.queued_at = self.sim.now
        self.sim.schedule(
            self.model.time("poll_detect"),
            self.sdma_inbox.put,
            ("token", port_id, token),
        )

    def post_host_event(self, port: NicPort, event: GmEvent) -> None:
        """Queue an event into the port's host-visible event ring.

        Registered host-event listeners for the port fire afterwards --
        the progress hook the non-blocking schedule engine uses to track
        liveness without polling the queue itself."""
        event.posted_at = self.sim.now
        port.event_queue.put(event)
        listeners = self._host_event_listeners.get(port.port_id)
        if listeners:
            for listener in tuple(listeners):
                listener(event)

    def add_host_event_listener(self, port_id: int, listener) -> None:
        """Register ``listener(event)`` to run on every host event the
        MCP machines post to ``port_id``'s event ring."""
        self._host_event_listeners.setdefault(port_id, []).append(listener)

    def remove_host_event_listener(self, port_id: int, listener) -> None:
        """Unregister a host-event listener (missing listeners are a
        no-op, so teardown paths can call this unconditionally)."""
        listeners = self._host_event_listeners.get(port_id)
        if listeners is None:
            return
        if listener in listeners:
            listeners.remove(listener)
        if not listeners:
            del self._host_event_listeners[port_id]

    def on_port_open(self, port_id: int) -> None:
        """Hook for the driver: replay closed-port barrier rejections."""
        self.barrier_engine.on_port_open(port_id)

    def on_port_close(self, port_id: int) -> None:
        """Hook for the driver: drop every piece of per-port reliability
        state a dead endpoint leaves behind.

        Beyond abandoning the port's pending barrier retransmits
        (Section 3.2) this clears the unexpected-record bits and
        collective value slots recorded *for* the port -- otherwise a
        reused port could match a stale record from the previous owner --
        and cancels the barrier retransmit timer if the unacked list
        emptied, so no timer keeps firing for an abandoned stream.
        """
        for conn in self._connections.values():
            conn.drop_barrier_unacked_for_port(port_id)
            conn.clear_unexpected_for_port(port_id)
            if not conn.barrier_unacked and conn.barrier_retransmit_timer is not None:
                conn.barrier_retransmit_timer.cancel()
                conn.barrier_retransmit_timer = None

    # ------------------------------------------------------------------
    # Retransmission timers
    # ------------------------------------------------------------------
    def ensure_retransmit_timer(self, conn: Connection) -> None:
        """Start the go-back-N timer if unacked packets exist."""
        if conn.retransmit_timer is None and conn.sent_list:
            conn.retransmit_timer = self.sim.schedule_timer(
                self.params.retransmit_timeout_us, self._on_retransmit_timeout, conn
            )

    def manage_retransmit_timer(self, conn: Connection, restart: bool = False) -> None:
        """Cancel/restart the go-back-N timer after ACK/NACK processing."""
        if conn.retransmit_timer is not None:
            conn.retransmit_timer.cancel()
            conn.retransmit_timer = None
        if conn.sent_list:
            conn.retransmit_timer = self.sim.schedule_timer(
                self.params.retransmit_timeout_us, self._on_retransmit_timeout, conn
            )

    def _raise_alarm(self, conn: Connection, stream: str, entry) -> None:
        """Give up on a wedged reliability stream: record + raise."""
        alarm = RetransmitLimitExceeded(
            self.node_id,
            conn.remote_node,
            stream,
            entry.seqno if stream == "regular" else entry.barrier_seqno,
            entry.retransmits,
        )
        self.alarms.append(alarm)
        if self.tracer is not None:
            self.tracer.record(
                f"nic{self.node_id}", "reliability.alarm",
                stream=stream, peer=conn.remote_node,
                retransmits=entry.retransmits,
                ctx=getattr(entry.packet, "ctx", None),
            )
            # Black box: attach the flight-recorder ring so whoever
            # catches the alarm (soak harness, campaign executor) can
            # ship the last-K-records dump back as data.
            if self.tracer.flight is not None:
                alarm.flight_records = self.tracer.flight.snapshot()
        raise alarm

    def _on_retransmit_timeout(self, conn: Connection) -> None:
        conn.retransmit_timer = None
        if self.crashed or conn.remote_node in self.suspected_peers:
            return
        if not conn.sent_list:
            return
        limit = self.params.max_retransmits
        for entry in list(conn.sent_list):
            if limit is not None and entry.retransmits >= limit:
                self._raise_alarm(conn, "regular", entry)
            self.sdma_inbox.put(("retransmit", conn.remote_node, entry))
        self.ensure_retransmit_timer(conn)

    # ------------------------------------------------------------------
    # Delayed ACKs
    # ------------------------------------------------------------------
    def schedule_ack(self, conn: Connection) -> None:
        """Owe the peer a cumulative ACK; coalesce within the delay window."""
        if self.params.ack_delay_us <= 0:
            self.rdma_queue.put(("ack_gen", conn.remote_node))
            return
        if conn.ack_timer is None:
            conn.ack_timer = self.sim.schedule_timer(
                self.params.ack_delay_us, self._on_ack_timer, conn
            )

    def _on_ack_timer(self, conn: Connection) -> None:
        conn.ack_timer = None
        self.rdma_queue.put(("ack_gen", conn.remote_node))

    def manage_barrier_retransmit_timer(self, conn: Connection) -> None:
        """Restart/cancel the SEPARATE-mode barrier timer."""
        if conn.barrier_retransmit_timer is not None:
            conn.barrier_retransmit_timer.cancel()
            conn.barrier_retransmit_timer = None
        if conn.barrier_unacked:
            conn.barrier_retransmit_timer = self.sim.schedule_timer(
                self.params.barrier_retransmit_timeout_us,
                self._on_barrier_retransmit_timeout,
                conn,
            )

    def _on_barrier_retransmit_timeout(self, conn: Connection) -> None:
        conn.barrier_retransmit_timer = None
        if self.crashed or conn.remote_node in self.suspected_peers:
            return
        if not conn.barrier_unacked:
            return
        limit = self.params.max_retransmits
        for entry in list(conn.barrier_unacked):
            if limit is not None and entry.retransmits >= limit:
                self._raise_alarm(conn, "barrier", entry)
            entry.retransmits += 1
            conn.packets_retransmitted += 1
            self.send_queue.put((self.clone_packet(entry.packet), False))
        self.manage_barrier_retransmit_timer(conn)

    # ------------------------------------------------------------------
    # Fail-stop failure handling
    # ------------------------------------------------------------------
    def on_peer_suspected(self, peer: int) -> None:
        """The failure detector declared ``peer`` failed (fail-stop).

        Runs atomically at the detection instant (no CPU charges -- the
        LANai acts on suspicion within one firmware dispatch): both
        reliability streams toward the suspect are abandoned with their
        send tokens fake-acked back to the host, every in-flight barrier
        involving the suspect is aborted, and every open port receives
        exactly one :class:`~repro.gm.events.PeerFailureEvent` (the
        barrier abort path posts ctx-carrying events; this fans generic
        ones out to the remaining ports so blocked receives wake up).
        """
        if self.crashed or peer in self.suspected_peers:
            return
        self.suspected_peers.add(peer)
        if self.tracer is not None:
            self.tracer.record(
                f"nic{self.node_id}", "peer.failed", peer=peer
            )
        conn = self._connections.get(peer)
        if conn is not None:
            self._abandon_connection(conn)
        suspects = frozenset({peer})
        notified = self.barrier_engine.abort_suspects(suspects)
        for port in self.ports.values():
            if not port.is_open:
                continue
            if port.coll_send_token is not None:
                # The collective engine guards every queued work item
                # with a token-liveness check, so clearing the pointer
                # inerts it; the send token must come home regardless.
                port.coll_send_token = None
                port.return_send_token()
            if port.port_id not in notified:
                self.post_host_event(
                    port,
                    PeerFailureEvent(port_id=port.port_id, suspects=suspects),
                )

    def _abandon_connection(self, conn: Connection) -> None:
        """Tear down the reliability streams toward a dead peer.

        Pending sends are *fake-acked*: their tokens return to the host
        with the usual :class:`SentEvent`, exactly as a cumulative ACK
        would have returned them.  The data is lost with the peer, but no
        port leaks a send token -- the shrink protocol immediately needs
        the full send budget.
        """
        for timer_name in (
            "retransmit_timer", "ack_timer", "barrier_retransmit_timer"
        ):
            timer = getattr(conn, timer_name)
            if timer is not None:
                timer.cancel()
                setattr(conn, timer_name, None)
        entries, conn.sent_list = conn.sent_list, []
        conn.barrier_unacked = []
        conn.nack_outstanding = False
        for entry in entries:
            token = entry.token
            if token is None:
                continue
            if getattr(token, "is_multicast", False):
                token.remaining_acks -= 1
                if token.remaining_acks > 0:
                    continue
                dst_node, dst_port = token.destinations[-1]
            else:
                dst_node, dst_port = token.dst_node, token.dst_port
            port = self.ports.get(token.src_port)
            if port is not None and port.is_open:
                port.return_send_token()
                self.post_host_event(
                    port,
                    SentEvent(
                        port_id=port.port_id,
                        token_id=token.token_id,
                        dst_node=dst_node,
                        dst_port=dst_port,
                    ),
                )

    def crash(self) -> None:
        """Fail-stop death of this NIC (the LANai stops executing).

        Open ports first learn their own node is down -- a ``NicCrash``
        keeps the host alive, and its blocked processes must wake with a
        :class:`PeerFailure` naming the local node -- then every machine
        stops and all pending protocol timers die with the firmware.
        """
        if self.crashed:
            return
        for port in self.ports.values():
            if port.is_open:
                self.post_host_event(
                    port,
                    PeerFailureEvent(
                        port_id=port.port_id,
                        suspects=frozenset({self.node_id}),
                    ),
                )
        self.crashed = True
        if self.tracer is not None:
            self.tracer.record(f"nic{self.node_id}", "nic.crash")
        if self.detector is not None:
            self.detector.stop()
        for machine in (
            self.sdma_machine,
            self.send_machine,
            self.recv_machine,
            self.rdma_machine,
        ):
            machine.stop()
        for conn in self._connections.values():
            for timer_name in (
                "retransmit_timer", "ack_timer", "barrier_retransmit_timer"
            ):
                timer = getattr(conn, timer_name)
                if timer is not None:
                    timer.cancel()
                    setattr(conn, timer_name, None)

    def restart(self) -> None:
        """Bring a crashed NIC back with fresh firmware state.

        The four MCP machines restart from scratch; connection state is
        *not* recovered and peers keep this node suspect -- rejoin (a
        group-membership grow) is out of scope, so a restarted node can
        open ports and talk to nodes that never suspected it, but not
        rejoin a shrunken communicator.
        """
        if not self.crashed:
            return
        self.crashed = False
        self.sdma_machine = SdmaMachine(self)
        self.send_machine = SendMachine(self)
        self.recv_machine = RecvMachine(self)
        self.rdma_machine = RdmaMachine(self)
        if self.tracer is not None:
            self.tracer.record(f"nic{self.node_id}", "nic.restart")

    # ------------------------------------------------------------------
    def cpu_time(self, operation: str):
        """Charge ``operation`` against the NIC processor (generator)."""
        yield from self.cpu_resource.use(self.model.time(operation))

    def shutdown(self) -> None:
        """Stop the state-machine processes (end-of-test cleanup)."""
        if self.detector is not None:
            self.detector.stop()
        for machine in (
            self.sdma_machine,
            self.send_machine,
            self.recv_machine,
            self.rdma_machine,
        ):
            machine.stop()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Nic node={self.node_id} model={self.model.name}>"
