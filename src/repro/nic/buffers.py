"""NIC SRAM packet-buffer pools.

The LANai stages every packet through on-card SRAM: outgoing packets are
DMAed into a transmit buffer before hitting the wire, incoming packets
land in a receive buffer before being DMAed to the host.  Pools are
finite; an exhausted transmit pool back-pressures the SDMA machine, an
exhausted receive pool forces the RECV machine to drop (and NACK) the
packet -- which is exactly the loss mode the reliability layer must
recover from.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.sim.engine import Simulator
from repro.sim.primitives import SimEvent


class BufferPool:
    """A counting pool of fixed-size SRAM buffers.

    ``acquire()`` returns a waitable (blocks when empty); ``try_acquire()``
    is the non-blocking variant used on the receive path where blocking
    would stall the wire.
    """

    def __init__(self, sim: Simulator, count: int, buffer_bytes: int, name: str = "") -> None:
        if count <= 0:
            raise ValueError("pool needs at least one buffer")
        if buffer_bytes <= 0:
            raise ValueError("buffers need positive size")
        self.sim = sim
        self.name = name
        self.buffer_bytes = buffer_bytes
        self.total = count
        self._free = count
        self._waiters: Deque[SimEvent] = deque()
        #: Statistics for tests / experiments.
        self.acquire_failures = 0
        self.high_watermark = 0

    @property
    def free(self) -> int:
        """Buffers currently available."""
        return self._free

    @property
    def in_use(self) -> int:
        """Buffers currently held."""
        return self.total - self._free

    def fits(self, size_bytes: int) -> bool:
        """Whether a payload fits one buffer."""
        return size_bytes <= self.buffer_bytes

    def acquire(self) -> SimEvent:
        """Waitable granted when a buffer is available (FIFO)."""
        ev = SimEvent(self.sim, name=f"buf:{self.name}")
        if self._free > 0 and not self._waiters:
            self._take()
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Grab a buffer if one is free; never blocks."""
        if self._free > 0 and not self._waiters:
            self._take()
            return True
        self.acquire_failures += 1
        return False

    def release(self) -> None:
        """Return a buffer; wakes the oldest blocked acquirer."""
        if self._free >= self.total and not self._waiters:
            raise RuntimeError(f"pool {self.name!r}: buffer double free")
        if self._waiters:
            self._waiters.popleft().succeed(None)
        else:
            self._free += 1

    def _take(self) -> None:
        self._free -= 1
        self.high_watermark = max(self.high_watermark, self.in_use)
