"""DMA engines and the shared PCI bus.

The LANai has two DMA engines -- host-to-SRAM (used by the SDMA state
machine) and SRAM-to-host (used by RDMA) -- but they share one PCI bus, so
concurrent transfers serialize.  A transfer costs:

* ``dma_setup`` NIC-processor cycles to program the engine (charged by the
  calling state machine against the NIC CPU, not here);
* bus acquisition (FIFO under contention);
* ``pci_setup_us`` of bus-transaction overhead plus ``bytes /
  pci_bandwidth_mbps`` of data movement.

Zero-byte transfers (barrier initiation tokens, completion notifications)
still pay the bus-transaction overhead, which is why the paper's ``Send``
and ``RDMA`` terms are nonzero even for empty messages.
"""

from __future__ import annotations

from repro.sim.engine import Simulator
from repro.sim.primitives import Resource, Timeout


class DmaEngine:
    """One directional DMA engine attached to a shared PCI bus."""

    def __init__(
        self,
        sim: Simulator,
        pci_bus: Resource,
        pci_bandwidth_mbps: float,
        pci_setup_us: float,
        name: str = "",
    ) -> None:
        if pci_bandwidth_mbps <= 0:
            raise ValueError("PCI bandwidth must be positive")
        if pci_setup_us < 0:
            raise ValueError("PCI setup time must be >= 0")
        self.sim = sim
        self.pci_bus = pci_bus
        self.pci_bandwidth_mbps = pci_bandwidth_mbps
        self.pci_setup_us = pci_setup_us
        self.name = name
        #: Optional tracer (set by the owning NIC); transfers carrying a
        #: trace context leave a ``{sdma,rdma}.dma`` record on completion.
        self.tracer = None
        self.transfers = 0
        self.bytes_moved = 0
        metrics = sim.metrics
        prefix = name or "dma"
        metrics.observe(f"{prefix}.transfers", lambda: self.transfers)
        metrics.observe(f"{prefix}.bytes", lambda: self.bytes_moved)
        #: Simulated time this engine holds the PCI bus (merged intervals).
        self._busy = metrics.busy_time(f"{prefix}.busy")
        #: Time spent waiting for the bus before each transfer -- the PCI
        #: contention term of the paper's Send/RDMA decomposition.
        self._pci_wait = metrics.histogram(f"{prefix}.pci_wait_us")
        # Sampled telemetry (no-ops when disabled): the monotone byte
        # total becomes a per-interval transfer rate.  Reads the plain
        # attribute, never the metrics instruments above (null objects
        # when the metrics flag is off).
        sim.telemetry.register(
            f"{prefix}.bytes_rate",
            lambda: float(self.bytes_moved),
            kind="counter",
            component=prefix,
            unit="B/us",
        )

    def transfer_time(self, size_bytes: int) -> float:
        """Bus-occupancy time for a transfer of ``size_bytes``."""
        return self.pci_setup_us + size_bytes / self.pci_bandwidth_mbps

    def transfer(self, size_bytes: int, ctx=None):
        """Generator: perform one DMA, holding the PCI bus for its duration.

        Usage from a state machine: ``yield from engine.transfer(n)``.
        ``ctx`` is an optional :class:`~repro.sim.tracing.TraceContext`
        attributing the transfer to a traced message; it changes nothing
        about the transfer itself.
        """
        if size_bytes < 0:
            raise ValueError("negative DMA size")
        requested_at = self.sim.now
        yield self.pci_bus.request()
        self._pci_wait.observe(self.sim.now - requested_at)
        self._busy.begin()
        try:
            yield Timeout(self.transfer_time(size_bytes))
            self.transfers += 1
            self.bytes_moved += size_bytes
        finally:
            self._busy.end()
            self.pci_bus.release()
        if ctx is not None and self.tracer is not None:
            # Name "nic3.rdma" -> category "nic3", label "rdma.dma".
            category, _, engine = self.name.rpartition(".")
            self.tracer.record(
                category or "dma", f"{engine or 'dma'}.dma",
                size=size_bytes, wait_us=self.sim.now - requested_at,
                ctx=ctx,
            )
