"""SDMA state machine.

"The SDMA state machine polls for new send tokens and queues them on the
queue for the appropriate connection.  The SDMA state machine is also
responsible for initiating a DMA to transfer data from the host memory to
the NIC transmit buffers and to prepare the packet for transmission."
(Section 4.1.)

Work items arriving on ``nic.sdma_inbox``:

``("token", port_id, token)``
    A fresh host send token (ordinary :class:`~repro.gm.tokens.SendToken`
    or a :class:`~repro.gm.tokens.BarrierSendToken` initiating a barrier).
``("retransmit", remote_node, entry)``
    Go-back-N retransmission of a sent-list entry: GM "push[es] the
    contents of the sent list back on the send queue", which re-DMAs and
    re-prepares the packet.
``("barrier_send_pe", port_id, token)`` /
``("barrier_send_gather", port_id, token)`` /
``("barrier_bcast", port_id, token)`` /
``("barrier_resend", port_id, token, endpoint, ptype)``
    Barrier firmware work delegated by the barrier engine (Section 5.2:
    barrier send tokens are repeatedly updated and re-queued).
"""

from __future__ import annotations

from repro.gm.tokens import SendToken
from repro.network.packet import PacketType
from repro.nic.mcp.connection import SentEntry
from repro.nic.mcp.machine import StateMachine


class SdmaMachine(StateMachine):
    """The SDMA state machine (see module docstring)."""
    machine_name = "sdma"

    def _run(self):
        nic = self.nic
        while True:
            item = yield nic.sdma_inbox.get()
            kind = item[0]
            if kind == "token":
                _, port_id, token = item
                if token.is_barrier:
                    yield from nic.barrier_engine.initiate(port_id, token)
                elif token.is_collective:
                    yield from nic.collective_engine.initiate(port_id, token)
                elif token.is_multicast:
                    yield from self._process_multicast_token(port_id, token)
                else:
                    yield from self._process_send_token(port_id, token)
            elif kind == "retransmit":
                _, remote_node, entry = item
                yield from self._retransmit(remote_node, entry)
            elif kind in (
                "barrier_send_pe",
                "barrier_send_gather",
                "barrier_bcast",
                "barrier_resend",
                "barrier_reject",
            ):
                yield from nic.barrier_engine.sdma_work(item)
            elif kind in ("coll_send_reduce", "coll_bcast", "coll_resend"):
                yield from nic.collective_engine.sdma_work(item)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"SDMA: unknown work item {item!r}")

    # ------------------------------------------------------------------
    def _fake_ack(self, token, dst_node: int, dst_port: int) -> None:
        """Complete a send toward a declared-dead peer host-side.

        The token returns and the usual ``SentEvent`` posts, exactly as a
        cumulative ACK would have delivered them (the data dies with the
        peer).  Without this a send issued *after* suspicion would wait
        forever: the retransmit path is fenced for suspects, so no ACK
        and no alarm would ever release the blocked host process.
        """
        from repro.gm.events import SentEvent

        nic = self.nic
        port = nic.ports.get(token.src_port)
        if port is not None and port.is_open:
            port.return_send_token()
            nic.post_host_event(
                port,
                SentEvent(
                    port_id=port.port_id,
                    token_id=token.token_id,
                    dst_node=dst_node,
                    dst_port=dst_port,
                ),
            )
        self.trace("suspect_fake_ack", key=token.token_id, dst=dst_node,
                   ctx=token.ctx)

    def _process_send_token(self, port_id: int, token: SendToken):
        """Ordinary reliable send: DMA payload in, prepare, hand to SEND."""
        nic = self.nic
        yield from self.cpu("token_process")
        if token.dst_node in nic.suspected_peers:
            self._fake_ack(token, token.dst_node, token.dst_port)
            return
        conn = nic.connection(token.dst_node)
        token.seqno = conn.assign_seqno()

        # Stage the payload into a transmit buffer (blocks if pool empty).
        yield nic.tx_buffers.acquire()
        yield from self.cpu("dma_setup")
        yield from nic.sdma_engine.transfer(token.size_bytes, ctx=token.ctx)
        yield from self.cpu("packet_prep")

        wire_type = token.wire_type or PacketType.DATA
        packet = nic.make_packet(
            wire_type,
            dst_node=token.dst_node,
            dst_port=token.dst_port,
            src_port=token.src_port,
            seqno=token.seqno,
            payload_bytes=token.size_bytes,
            # One-sided packets carry their descriptor verbatim; ordinary
            # sends wrap the application body.
            payload=(
                dict(token.payload)
                if wire_type is not PacketType.DATA
                else {"body": token.payload}
            ),
            ctx=token.ctx.child() if token.ctx is not None else None,
        )
        yield from self.cpu("send_queue_manage")
        conn.record_sent(SentEntry(seqno=token.seqno, packet=packet, token=token))
        nic.ensure_retransmit_timer(conn)
        self.trace("prepared", key=packet.packet_id, dst=token.dst_node,
                   seq=token.seqno, ctx=packet.ctx)
        nic.send_queue.put((packet, True))  # True: uses a tx buffer

    def _process_multicast_token(self, port_id: int, token):
        """NIC-assisted multidestination send (the paper's reference [2]):
        one host DMA, one packet prepared and queued per destination."""
        nic = self.nic
        yield from self.cpu("token_process")
        live = [
            dest for dest in token.destinations
            if dest[0] not in nic.suspected_peers
        ]
        if not live:
            self._fake_ack(token, *token.destinations[-1])
            return
        # Stage the payload once.
        yield nic.tx_buffers.acquire()
        yield from self.cpu("dma_setup")
        yield from nic.sdma_engine.transfer(token.size_bytes, ctx=token.ctx)
        token.remaining_acks = len(live)
        last_index = len(live) - 1
        for i, (dst_node, dst_port) in enumerate(live):
            yield from self.cpu("packet_prep")
            conn = nic.connection(dst_node)
            seqno = conn.assign_seqno()
            packet = nic.make_packet(
                PacketType.DATA,
                dst_node=dst_node,
                dst_port=dst_port,
                src_port=token.src_port,
                seqno=seqno,
                payload_bytes=token.size_bytes,
                payload={"body": token.payload},
                ctx=token.ctx.child() if token.ctx is not None else None,
            )
            yield from self.cpu("send_queue_manage")
            conn.record_sent(SentEntry(seqno=seqno, packet=packet, token=token))
            nic.ensure_retransmit_timer(conn)
            # The SRAM buffer is released when the *last* replica has been
            # handed to the wire.
            nic.send_queue.put((packet, i == last_index))
        self.trace("multicast_fanout", key=token.token_id,
                   fanout=len(token.destinations))

    def _retransmit(self, remote_node: int, entry: SentEntry):
        """Re-DMA and re-send one sent-list entry (if still unacked)."""
        nic = self.nic
        conn = nic.connection(remote_node)
        if entry not in conn.sent_list:
            return  # ACKed while the retransmit work item was queued.
        yield from self.cpu("token_process")
        yield nic.tx_buffers.acquire()
        yield from self.cpu("dma_setup")
        yield from nic.sdma_engine.transfer(
            entry.packet.payload_bytes, ctx=entry.packet.ctx
        )
        yield from self.cpu("packet_prep")
        entry.retransmits += 1
        conn.packets_retransmitted += 1
        packet = nic.clone_packet(entry.packet)
        self.trace("retransmit", key=packet.packet_id, dst=remote_node,
                   seq=entry.seqno, ctx=packet.ctx)
        nic.send_queue.put((packet, True))
