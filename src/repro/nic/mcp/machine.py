"""Common scaffolding for the four MCP state machines.

Each machine is a simulation process in an endless fetch-work/do-work
loop.  Every unit of work charges NIC-processor time through the shared
CPU resource, so the machines interleave on the single LANai processor
exactly as the real MCP's cooperative dispatch loop does.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.process import Process, ProcessKilled

if TYPE_CHECKING:  # pragma: no cover
    from repro.nic.nic import Nic


class StateMachine:
    """Base class: binds to a NIC, runs :meth:`_run` as a process."""

    #: Subclasses set this for traces.
    machine_name = "machine"

    def __init__(self, nic: "Nic") -> None:
        self.nic = nic
        self.sim = nic.sim
        self.process = Process(
            nic.sim,
            self._guarded_run(),
            name=f"nic{nic.node_id}.{self.machine_name}",
        )

    def _guarded_run(self):
        try:
            yield from self._run()
        except ProcessKilled:
            return

    def _run(self):  # pragma: no cover - abstract
        raise NotImplementedError
        yield  # make it a generator

    # ------------------------------------------------------------------
    def cpu(self, operation: str):
        """Charge one firmware operation against the NIC processor.

        Usage: ``yield from self.cpu("recv_packet")``.
        """
        yield from self.nic.cpu_resource.use(self.nic.model.time(operation))

    def trace(self, label: str, **payload) -> None:
        """Record a trace event if tracing is enabled."""
        if self.nic.tracer is not None:
            self.nic.tracer.record(
                f"nic{self.nic.node_id}", f"{self.machine_name}.{label}", **payload
            )

    def stop(self) -> None:
        """Kill the machine's process (shutdown/cleanup)."""
        self.process.kill()
