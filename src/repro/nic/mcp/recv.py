"""RECV state machine.

"The RECV state machine receives incoming packets into receive buffers
and handles acknowledgment and negative acknowledgment packets.  When the
RECV state machine receives an acknowledgment it removes the token
associated with that send from the sent list and passes it back to the
host." (Section 4.1.)

Dispatch rules:

* **ACK/NACK** -- regular-stream reliability, handled here; completed send
  tokens are passed back to the host as :class:`~repro.gm.events.SentEvent`.
* **DATA** -- sequence-number checked against the connection (go-back-N
  receiver).  Accepted packets reserve a receive SRAM buffer and a host
  receive token, then go to RDMA for delivery; an ACK-generation work
  item is queued to RDMA ("The RDMA state machine prepares acknowledgment
  and negative acknowledgment packets").
* **Barrier payload packets** -- in ``TOKEN_PER_DESTINATION`` mode they ride
  the regular stream (same seqno check, same ACKs -- this is what makes
  them ordered relative to non-barrier traffic, Section 3.3); in the
  other modes they bypass it.  Either way the barrier logic itself runs
  in the RDMA machine (Section 5.2).
* **BARRIER_ACK / BARRIER_REJECT** -- the separate barrier reliability
  mechanism (Section 4.4) and the closed-port recovery (Section 3.2).
"""

from __future__ import annotations

from repro.gm.constants import BarrierReliability
from repro.gm.events import SentEvent
from repro.network.packet import Packet, PacketType
from repro.nic.mcp.machine import StateMachine


class RecvMachine(StateMachine):
    """The RECV state machine (see module docstring)."""
    machine_name = "recv"

    def _run(self):
        nic = self.nic
        while True:
            packet = yield nic.recv_queue.get()
            ptype = packet.ptype
            if packet.src_node in nic.suspected_peers:
                # Epoch fence: a suspect never recovers (fail-stop), so
                # anything it sent before dying -- or anything delayed in
                # the fabric -- is dropped before touching protocol state.
                yield from self.cpu("recv_control")
                continue
            if ptype is PacketType.HEARTBEAT:
                # Liveness was recorded at wire delivery (detector.saw);
                # the payload carries nothing else.
                yield from self.cpu("recv_control")
                continue
            if ptype is PacketType.ACK:
                yield from self._handle_ack(packet)
            elif ptype is PacketType.NACK:
                yield from self._handle_nack(packet)
            elif ptype is PacketType.BARRIER_ACK:
                yield from self.cpu("recv_control")
                conn = nic.connection(packet.src_node)
                entry = conn.handle_barrier_ack(
                    packet.payload["acked_port"], packet.payload["acked_seqno"]
                )
                if entry is not None and entry.retransmits:
                    nic.recovery_hist.observe(nic.sim.now - entry.first_sent_at)
                nic.manage_barrier_retransmit_timer(conn)
            elif ptype is PacketType.BARRIER_REJECT:
                yield from self.cpu("recv_control")
                yield from nic.barrier_engine.on_reject(packet)
                yield from nic.collective_engine.on_reject(packet)
            elif ptype is PacketType.DATA:
                yield from self._handle_data(packet)
            elif ptype.is_onesided:
                yield from self._handle_onesided(packet)
            elif ptype.is_barrier or ptype.is_collective:
                yield from self._handle_barrier_payload(packet)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"RECV: unknown packet type {ptype}")

    # ------------------------------------------------------------------
    def _handle_ack(self, packet: Packet):
        nic = self.nic
        yield from self.cpu("recv_control")
        conn = nic.connection(packet.src_node)
        done = conn.handle_ack(packet.payload["cum_seqno"])
        nic.manage_retransmit_timer(conn)
        for entry in done:
            if entry.retransmits:
                nic.recovery_hist.observe(nic.sim.now - entry.first_sent_at)
            if entry.token is None:
                continue
            token = entry.token
            if getattr(token, "is_multicast", False):
                # The token returns only when every replica is ACKed.
                token.remaining_acks -= 1
                if token.remaining_acks > 0:
                    continue
                dst_node, dst_port = token.destinations[-1]
            else:
                dst_node, dst_port = token.dst_node, token.dst_port
            port = nic.ports.get(token.src_port)
            if port is not None and port.is_open:
                yield from self.cpu("post_event")
                port.return_send_token()
                nic.post_host_event(
                    port,
                    SentEvent(
                        port_id=port.port_id,
                        token_id=token.token_id,
                        dst_node=dst_node,
                        dst_port=dst_port,
                    ),
                )

    def _handle_nack(self, packet: Packet):
        """Go-back-N: retransmit everything from the NACKed seqno."""
        nic = self.nic
        yield from self.cpu("recv_control")
        conn = nic.connection(packet.src_node)
        for entry in conn.entries_from(packet.payload["expected_seqno"]):
            nic.sdma_inbox.put(("retransmit", conn.remote_node, entry))
        nic.manage_retransmit_timer(conn, restart=True)

    # ------------------------------------------------------------------
    def _handle_data(self, packet: Packet):
        nic = self.nic
        yield from self.cpu("recv_packet")
        conn = nic.connection(packet.src_node)
        verdict = conn.classify_incoming(packet.seqno)
        if verdict == "duplicate":
            conn.duplicates_dropped += 1
            nic.rdma_queue.put(("ack_gen", packet.src_node))
            return
        if verdict == "out_of_order":
            self._send_nack_once(conn)
            return

        # In-sequence: the receiver must have resources, or it NACKs and
        # the sender retries (receive-side flow control).
        port = nic.ports.get(packet.dst_port)
        if port is None or not port.is_open:
            # GM drops messages to closed ports; the sender's token is
            # eventually returned when ACKed... here we NACK so the send
            # stays pending, surfacing the error mode the tests exercise.
            self._send_nack_once(conn)
            return
        recv_token = port.take_recv_token(packet.payload_bytes)
        if recv_token is None or not nic.rx_buffers.try_acquire():
            if recv_token is not None:
                port.recv_tokens.appendleft(recv_token)  # undo the take
                recv_token.used = False
            self._send_nack_once(conn)
            return

        conn.accept_incoming()
        port.messages_received += 1
        self.trace("accepted", key=packet.packet_id, seq=packet.seqno,
                   ctx=packet.ctx)
        nic.schedule_ack(conn)
        nic.rdma_queue.put(("deliver", packet, recv_token))

    def _handle_onesided(self, packet: Packet):
        """PUT / GET_REQ / GET_REPLY: regular-stream reliability, but no
        host receive token is consumed -- the defining property of
        one-sided operations (the target process never posts a buffer)."""
        nic = self.nic
        yield from self.cpu("recv_packet")
        conn = nic.connection(packet.src_node)
        verdict = conn.classify_incoming(packet.seqno)
        if verdict == "duplicate":
            conn.duplicates_dropped += 1
            nic.rdma_queue.put(("ack_gen", packet.src_node))
            return
        if verdict == "out_of_order":
            self._send_nack_once(conn)
            return
        port = nic.ports.get(packet.dst_port)
        if port is None or not port.is_open or not nic.rx_buffers.try_acquire():
            self._send_nack_once(conn)
            return
        conn.accept_incoming()
        nic.schedule_ack(conn)
        nic.rdma_queue.put(("onesided_rx", packet))

    def _send_nack_once(self, conn) -> None:
        """Queue one NACK for the current gap (suppressing storms)."""
        if not conn.nack_outstanding:
            conn.nack_outstanding = True
            conn.nacks_sent += 1
            self.nic.rdma_queue.put(("nack_gen", conn.remote_node))

    # ------------------------------------------------------------------
    def _handle_barrier_payload(self, packet: Packet):
        nic = self.nic
        yield from self.cpu("recv_barrier")
        self.trace("barrier_recv", key=packet.packet_id,
                   src=(packet.src_node, packet.src_port), ctx=packet.ctx)
        mode = nic.params.barrier_reliability
        if mode is BarrierReliability.TOKEN_PER_DESTINATION:
            # Barrier packets share the regular stream: same seqno rules.
            conn = nic.connection(packet.src_node)
            verdict = conn.classify_incoming(packet.seqno)
            if verdict == "duplicate":
                conn.duplicates_dropped += 1
                nic.rdma_queue.put(("ack_gen", packet.src_node))
                return
            if verdict == "out_of_order":
                self._send_nack_once(conn)
                return
            conn.accept_incoming()
            nic.schedule_ack(conn)
            nic.rdma_queue.put(("barrier_rx", packet))
        elif mode is BarrierReliability.SEPARATE:
            # Strict in-order acceptance on the dedicated barrier stream.
            # Accepted and duplicate packets are ACKed (a duplicate means
            # the original ACK was lost); packets beyond a gap are dropped
            # silently so the sender's timer refills the window in order.
            conn = nic.connection(packet.src_node)
            verdict = conn.classify_barrier_incoming(packet.src_port, packet.seqno)
            if verdict == "future":
                return
            nic.rdma_queue.put(("barrier_ack_gen", packet))
            if verdict == "accept":
                nic.rdma_queue.put(("barrier_rx", packet))
        else:  # UNRELIABLE: straight to the barrier logic.
            nic.rdma_queue.put(("barrier_rx", packet))
