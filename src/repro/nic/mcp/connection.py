"""Per-remote-node connection state.

GM is connectionless at the host level but "provides reliability by
maintaining reliable connections between NICs of different nodes"
(Section 4.1).  The NIC keeps one :class:`Connection` per peer node with:

* the regular reliable stream: send sequence numbers, the *sent list* of
  unacknowledged packets, cumulative ACK / go-back-N NACK handling and a
  retransmission timer;
* the **unexpected-barrier-message record** of Sections 3.1/4.3: one bit
  per source port on this connection ("Because GM allows only eight
  endpoints per NIC, this overhead is only one byte per connection"),
  implemented as an int bitmask with constant-time set/check/clear;
* the *separate* barrier reliability stream of Section 4.4 (per-port
  barrier sequence numbers, unacked barrier packets, last-seen dedup
  state) used when :class:`~repro.gm.constants.BarrierReliability.SEPARATE`
  is selected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.gm.constants import MAX_PORTS
from repro.gm.tokens import SendToken
from repro.network.packet import Packet
from repro.sim.engine import EventHandle, Simulator


class UnexpectedRecord:
    """The per-connection unexpected-barrier-message bit array.

    One bit per remote source port.  ``set``/``check_clear`` mirror the
    paper's usage: reception of an unexpected barrier message sets the
    source port's bit; when the NIC is ready for that message it checks
    and *clears* the bit ("After a bit is checked, the bit is cleared").

    Beside the paper's one byte of bits we remember which *local* port
    each recorded message was destined for (``dst_ports``), so the close
    path can purge records belonging to a dying endpoint -- without this
    a reused port could match a stale record left by its previous owner.
    For causal tracing we also stash the recorded packet's trace context
    (``ctxs``); ``check_clear`` hands it back (any stored context is
    truthy, plain ``True`` otherwise) so the consumer can continue the
    recorded message's span tree instead of starting a fresh one.
    """

    __slots__ = ("bits", "num_ports", "dst_ports", "ctxs")

    def __init__(self, num_ports: int = MAX_PORTS) -> None:
        if not 1 <= num_ports <= 64:
            raise ValueError("port count must fit one machine word")
        self.num_ports = num_ports
        self.bits = 0
        #: src_port -> local dst_port the recorded message targeted.
        self.dst_ports: Dict[int, int] = {}
        #: src_port -> trace context of the recorded message, if any.
        self.ctxs: Dict[int, Any] = {}

    def _mask(self, src_port: int) -> int:
        if not 0 <= src_port < self.num_ports:
            raise ValueError(f"source port {src_port} out of range")
        return 1 << src_port

    def set(
        self,
        src_port: int,
        dst_port: Optional[int] = None,
        ctx: Any = None,
    ) -> None:
        """Record an unexpected message from ``src_port`` (destined to
        local ``dst_port``, when known)."""
        self.bits |= self._mask(src_port)
        if dst_port is not None:
            self.dst_ports[src_port] = dst_port
        else:
            self.dst_ports.pop(src_port, None)
        if ctx is not None:
            self.ctxs[src_port] = ctx
        else:
            self.ctxs.pop(src_port, None)

    def is_set(self, src_port: int) -> bool:
        """Non-destructive test of a bit (tests/debugging)."""
        return bool(self.bits & self._mask(src_port))

    def check_clear(self, src_port: int):
        """Test the bit and clear it if set (the paper's check primitive).

        Returns a truthy value when the bit was set -- the recorded trace
        context when one was stored, ``True`` otherwise -- and ``False``
        when it was not.
        """
        mask = self._mask(src_port)
        if self.bits & mask:
            self.bits &= ~mask
            self.dst_ports.pop(src_port, None)
            return self.ctxs.pop(src_port, None) or True
        return False

    def clear_for_dst_port(self, dst_port: int) -> int:
        """Drop every record destined to local ``dst_port`` (port close);
        returns how many bits were cleared."""
        stale = [sp for sp, dp in self.dst_ports.items() if dp == dst_port]
        for src_port in stale:
            self.bits &= ~self._mask(src_port)
            del self.dst_ports[src_port]
            self.ctxs.pop(src_port, None)
        return len(stale)

    def clear_all(self) -> None:
        """Reset the record (port-reuse tests)."""
        self.bits = 0
        self.dst_ports.clear()
        self.ctxs.clear()


@dataclass
class SentEntry:
    """One entry in the sent list (regular reliable stream)."""

    seqno: int
    packet: Packet
    #: Host token to return on ACK; None for firmware-originated packets
    #: (barrier packets in TOKEN_PER_DESTINATION mode).
    token: Optional[SendToken]
    #: Retransmission counter, for tests and livelock detection.
    retransmits: int = 0
    #: Simulated time of the first transmission (time-to-recover metric).
    first_sent_at: float = 0.0


@dataclass
class BarrierUnacked:
    """An unacknowledged barrier packet in the SEPARATE reliability mode."""

    src_port: int
    barrier_seqno: int
    packet: Packet
    retransmits: int = 0
    #: Simulated time of the first transmission (time-to-recover metric).
    first_sent_at: float = 0.0


class Connection:
    """Reliable-connection state toward one remote node."""

    def __init__(
        self,
        sim: Simulator,
        local_node: int,
        remote_node: int,
        num_ports: int = MAX_PORTS,
    ) -> None:
        self.sim = sim
        self.local_node = local_node
        self.remote_node = remote_node

        # -- regular stream, send side -------------------------------------
        self.next_send_seqno = 1
        self.sent_list: List[SentEntry] = []
        self.retransmit_timer: Optional[EventHandle] = None

        # -- regular stream, receive side ------------------------------------
        self.expected_seqno = 1
        #: Set while a NACK for the current expected seqno is outstanding,
        #: to avoid NACK storms while the go-back-N retransmission flies.
        self.nack_outstanding = False
        #: Delayed-ACK timer (GM coalesces ACKs instead of acking every
        #: packet); None when no ACK is owed.
        self.ack_timer: Optional[EventHandle] = None

        # -- unexpected-barrier-message record (Sections 3.1 / 4.3) ---------
        self.unexpected = UnexpectedRecord(num_ports)
        #: Unexpected *collective* messages additionally carry a value, so
        #: the one-bit record is extended to one value slot per source
        #: port (same at-most-one-outstanding invariant as the barrier
        #: record; our Section 8 extension).
        self.coll_unexpected: Dict[int, dict] = {}

        # -- separate barrier reliability (Section 4.4) ----------------------
        #: Next barrier seqno per *local* sending port.
        self.barrier_next_seq: Dict[int, int] = {}
        #: Unacked barrier packets (SEPARATE mode), in send order.
        self.barrier_unacked: List[BarrierUnacked] = []
        self.barrier_retransmit_timer: Optional[EventHandle] = None
        #: Highest barrier seqno seen per *remote* sending port (dedup).
        self.barrier_last_seen: Dict[int, int] = {}

        # -- statistics -------------------------------------------------------
        self.packets_acked = 0
        self.packets_retransmitted = 0
        self.nacks_sent = 0
        self.duplicates_dropped = 0
        #: Barrier-stream packets dropped because a gap precedes them
        #: (classify_barrier_incoming "future" verdict).
        self.future_dropped = 0
        #: Go-back-N window occupancy high-water marks (regular sent list
        #: and the SEPARATE-mode barrier unacked list).
        self.sent_list_high_water = 0
        self.barrier_unacked_high_water = 0

    # ------------------------------------------------------------------
    # Regular stream, send side
    # ------------------------------------------------------------------
    def assign_seqno(self) -> int:
        """Next regular-stream sequence number."""
        seqno = self.next_send_seqno
        self.next_send_seqno += 1
        return seqno

    def record_sent(self, entry: SentEntry) -> None:
        """Append to the sent list (awaiting ACK)."""
        entry.first_sent_at = self.sim.now
        self.sent_list.append(entry)
        if len(self.sent_list) > self.sent_list_high_water:
            self.sent_list_high_water = len(self.sent_list)

    def handle_ack(self, cum_seqno: int) -> List[SentEntry]:
        """Cumulative ACK: drop entries with seqno <= cum, return them."""
        done = [e for e in self.sent_list if e.seqno <= cum_seqno]
        if done:
            self.sent_list = [e for e in self.sent_list if e.seqno > cum_seqno]
            self.packets_acked += len(done)
        return done

    def entries_from(self, seqno: int) -> List[SentEntry]:
        """Sent-list entries with seqno >= ``seqno`` (go-back-N set)."""
        return [e for e in self.sent_list if e.seqno >= seqno]

    # ------------------------------------------------------------------
    # Regular stream, receive side
    # ------------------------------------------------------------------
    def classify_incoming(self, seqno: int) -> str:
        """'accept', 'duplicate' (re-ack, drop) or 'out_of_order' (NACK)."""
        if seqno == self.expected_seqno:
            return "accept"
        if seqno < self.expected_seqno:
            return "duplicate"
        return "out_of_order"

    def accept_incoming(self) -> None:
        """Advance the receive window after an in-sequence packet."""
        self.expected_seqno += 1
        self.nack_outstanding = False

    # ------------------------------------------------------------------
    # Separate barrier stream (Section 4.4)
    # ------------------------------------------------------------------
    def assign_barrier_seqno(self, src_port: int) -> int:
        """Next barrier-stream sequence number for a local port."""
        seq = self.barrier_next_seq.get(src_port, 0) + 1
        self.barrier_next_seq[src_port] = seq
        return seq

    def record_barrier_sent(self, entry: BarrierUnacked) -> None:
        """Track an unacknowledged SEPARATE-mode barrier packet."""
        entry.first_sent_at = self.sim.now
        self.barrier_unacked.append(entry)
        if len(self.barrier_unacked) > self.barrier_unacked_high_water:
            self.barrier_unacked_high_water = len(self.barrier_unacked)

    def handle_barrier_ack(
        self, src_port: int, barrier_seqno: int
    ) -> Optional[BarrierUnacked]:
        """Drop and return the matching unacked entry, if one was found."""
        for i, e in enumerate(self.barrier_unacked):
            if e.src_port == src_port and e.barrier_seqno == barrier_seqno:
                del self.barrier_unacked[i]
                return e
        return None

    def classify_barrier_incoming(self, src_port: int, barrier_seqno: int) -> str:
        """In-order acceptance for the SEPARATE barrier stream.

        Section 3.3 requires that "the order of messages will be
        maintained ... among barrier messages": a later barrier instance's
        message must never be matched while an earlier one is still
        outstanding (a retransmitted message overtaken by its successor
        would otherwise complete the *wrong* barrier and then be dropped
        as a duplicate, deadlocking the stream).

        Returns ``"accept"`` (in sequence; last-seen is advanced),
        ``"duplicate"`` (already delivered; re-ACK, drop) or ``"future"``
        (a gap exists; drop *without* ACK so the sender's timer
        retransmits the whole unacked window in order).
        """
        last = self.barrier_last_seen.get(src_port, 0)
        if barrier_seqno <= last:
            self.duplicates_dropped += 1
            return "duplicate"
        if barrier_seqno == last + 1:
            self.barrier_last_seen[src_port] = barrier_seqno
            return "accept"
        self.future_dropped += 1
        return "future"

    def drop_barrier_unacked_for_port(self, src_port: int) -> None:
        """Local port closed mid-barrier: abandon its pending retransmits
        ("but only if the endpoint that initiated the barrier has not
        closed since the message was sent", Section 3.2)."""
        self.barrier_unacked = [
            e for e in self.barrier_unacked if e.src_port != src_port
        ]

    def clear_unexpected_for_port(self, port_id: int) -> None:
        """Purge unexpected-record state destined to a closing local port.

        Without this a reused port could match a stale barrier record bit
        (or consume a stale collective value slot) left behind by the
        endpoint's previous owner.
        """
        self.unexpected.clear_for_dst_port(port_id)
        stale = [
            sp
            for sp, slot in self.coll_unexpected.items()
            if slot.get("dst_port") == port_id
        ]
        for sp in stale:
            del self.coll_unexpected[sp]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Connection {self.local_node}->{self.remote_node} "
            f"next={self.next_send_seqno} exp={self.expected_seqno} "
            f"unacked={len(self.sent_list)}>"
        )
