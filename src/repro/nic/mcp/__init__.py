"""The Myrinet Control Program (MCP) firmware model.

Figure 4 of the paper: four state machines -- SDMA, SEND, RECV, RDMA --
run on the NIC processor.  Here each is a simulation process; they share
the single NIC-CPU :class:`~repro.sim.primitives.Resource`, so activity in
one machine delays the others exactly as on the real 33/66 MHz LANai.

Work flows between machines through stores:

.. code-block:: text

    host --(send tokens)--> sdma_inbox --> [SDMA] --> send_queue --> [SEND] --> wire
    wire --> recv_queue --> [RECV] --> rdma_queue --> [RDMA] --(events)--> host
                                   \\--> send_queue (ACK/NACK via RDMA prep)

The barrier extension (Section 5.2) hooks SDMA (barrier token processing,
packet preparation, post-prepare record check) and RDMA (record/advance
on reception, completion notification); the hook logic itself lives in
:mod:`repro.core.nic_barrier` because it is the paper's contribution.
"""

from repro.nic.mcp.connection import Connection, UnexpectedRecord
from repro.nic.mcp.machine import StateMachine
from repro.nic.mcp.rdma import RdmaMachine
from repro.nic.mcp.recv import RecvMachine
from repro.nic.mcp.sdma import SdmaMachine
from repro.nic.mcp.send import SendMachine

__all__ = [
    "Connection",
    "RdmaMachine",
    "RecvMachine",
    "SdmaMachine",
    "SendMachine",
    "StateMachine",
    "UnexpectedRecord",
]
