"""SEND state machine.

"The SEND state machine is responsible for transmitting packets which
were prepared by the SDMA state machine and any acknowledgment packets
which may be pending." (Section 4.1.)

Items on ``nic.send_queue`` are ``(packet, uses_tx_buffer)`` pairs; the
transmit SRAM buffer is released once the packet is handed to the wire
interface (the network channel then models wire occupancy, so a second
packet can be *prepared* while the first is still serializing -- the
separate-transmit-channel property the paper's timing model relies on).
"""

from __future__ import annotations

from repro.nic.mcp.machine import StateMachine


class SendMachine(StateMachine):
    """The SEND state machine (see module docstring)."""
    machine_name = "send"

    def _run(self):
        nic = self.nic
        while True:
            packet, uses_buffer = yield nic.send_queue.get()
            yield from self.cpu("send_dispatch")
            nic.inject(packet)
            if uses_buffer:
                nic.tx_buffers.release()
            self.trace("xmit", key=packet.packet_id, type=packet.ptype.value,
                       ctx=packet.ctx)
