"""RDMA state machine.

"The RDMA state machine prepares acknowledgment and negative
acknowledgment packets and DMAs the data to the host buffer corresponding
to an appropriate receive token.  The RDMA state machine also adds
receive tokens in the receive queue to notify the process that the
receive has completed." (Section 4.1.)

It is also where the barrier extension's receive-side logic runs
(Section 5.2): "When a barrier packet is received, the RDMA state machine
can access the state of the barrier by simply dereferencing the pointer
[in the port data structure]".

Work items on ``nic.rdma_queue``:

``("deliver", packet, recv_token)``  -- DMA payload to host, post RecvEvent.
``("ack_gen", remote_node)``         -- prepare a cumulative ACK.
``("nack_gen", remote_node)``        -- prepare a NACK for the current gap.
``("barrier_ack_gen", packet)``      -- SEPARATE-mode barrier ACK.
``("barrier_rx", packet)``           -- barrier packet: record/advance.
``("barrier_complete", port_id, token)`` -- post completion to the host.
"""

from __future__ import annotations

from repro.gm.events import RecvEvent
from repro.network.packet import PacketType
from repro.nic.mcp.machine import StateMachine

#: Size of a receive-queue event DMAed into the host's event ring.
EVENT_DMA_BYTES = 16


class RdmaMachine(StateMachine):
    """The RDMA state machine (see module docstring)."""
    machine_name = "rdma"

    def _run(self):
        nic = self.nic
        while True:
            item = yield nic.rdma_queue.get()
            kind = item[0]
            if kind == "deliver":
                yield from self._deliver(item[1], item[2])
            elif kind == "ack_gen":
                yield from self._send_ack(item[1])
            elif kind == "nack_gen":
                yield from self._send_nack(item[1])
            elif kind == "barrier_ack_gen":
                yield from self._send_barrier_ack(item[1])
            elif kind == "barrier_rx":
                if item[1].is_collective:
                    yield from nic.collective_engine.on_packet(item[1])
                else:
                    yield from nic.barrier_engine.on_barrier_packet(item[1])
            elif kind == "barrier_complete":
                yield from nic.barrier_engine.complete(item[1], item[2])
            elif kind == "coll_complete":
                yield from nic.collective_engine.complete(item[1], item[2])
            elif kind == "onesided_rx":
                yield from self._handle_onesided(item[1])
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"RDMA: unknown work item {item!r}")

    # ------------------------------------------------------------------
    def _deliver(self, packet, recv_token):
        """DMA an accepted message into its host buffer + post the event."""
        nic = self.nic
        yield from self.cpu("rdma_process")
        yield from nic.rdma_engine.transfer(packet.payload_bytes, ctx=packet.ctx)
        nic.rx_buffers.release()
        yield from self.cpu("post_event")
        yield from nic.rdma_engine.transfer(EVENT_DMA_BYTES, ctx=packet.ctx)
        port = nic.ports.get(packet.dst_port)
        if port is not None and port.is_open:
            nic.post_host_event(
                port,
                RecvEvent(
                    port_id=packet.dst_port,
                    src_node=packet.src_node,
                    src_port=packet.src_port,
                    size_bytes=packet.payload_bytes,
                    payload=packet.payload.get("body"),
                ),
            )
        self.trace("delivered", key=packet.packet_id, ctx=packet.ctx)

    # ------------------------------------------------------------------
    # One-sided Get/Put (the Section 8 layer): the RDMA machine is the
    # natural home -- PUTs are host-memory writes, GET requests are
    # host-memory *reads* answered entirely in firmware.
    # ------------------------------------------------------------------
    def _handle_onesided(self, packet):
        from repro.gm.onesided import GetCompletedEvent, PutNotifyEvent

        nic = self.nic
        port = nic.ports.get(packet.dst_port)
        yield from self.cpu("rdma_process")
        if packet.ptype is PacketType.PUT:
            region = None if port is None else port.exposed_regions.get(
                packet.payload["region_id"]
            )
            if region is None:
                nic.rx_buffers.release()
                raise RuntimeError(
                    f"node {nic.node_id}: PUT targets unknown region "
                    f"{packet.payload['region_id']} on port {packet.dst_port}"
                )
            region.check_bounds(packet.payload["offset"], packet.payload_bytes)
            yield from nic.rdma_engine.transfer(packet.payload_bytes)
            nic.rx_buffers.release()
            region.data[packet.payload["offset"]] = packet.payload["value"]
            if packet.payload.get("notify") and port.is_open:
                yield from self.cpu("post_event")
                yield from nic.rdma_engine.transfer(EVENT_DMA_BYTES)
                nic.post_host_event(
                    port,
                    PutNotifyEvent(
                        port_id=packet.dst_port,
                        src_node=packet.src_node,
                        src_port=packet.src_port,
                        region_id=packet.payload["region_id"],
                        offset=packet.payload["offset"],
                        size_bytes=packet.payload_bytes,
                    ),
                )
            self.trace("put", key=packet.packet_id)
        elif packet.ptype is PacketType.GET_REQ:
            region = None if port is None else port.exposed_regions.get(
                packet.payload["region_id"]
            )
            if region is None:
                nic.rx_buffers.release()
                raise RuntimeError(
                    f"node {nic.node_id}: GET targets unknown region "
                    f"{packet.payload['region_id']} on port {packet.dst_port}"
                )
            offset = packet.payload["offset"]
            size = packet.payload["size"]
            region.check_bounds(offset, size)
            # Read the host memory (NIC-initiated host->SRAM DMA), then
            # answer on the reliable stream -- the remote host never runs.
            yield from nic.sdma_engine.transfer(size)
            nic.rx_buffers.release()
            yield from self.cpu("packet_prep")
            conn = nic.connection(packet.src_node)
            reply = nic.make_packet(
                PacketType.GET_REPLY,
                dst_node=packet.src_node,
                dst_port=packet.payload["reply_port"],
                src_port=packet.dst_port,
                seqno=conn.assign_seqno(),
                payload_bytes=size,
                payload={
                    "get_id": packet.payload["get_id"],
                    "value": region.data.get(offset),
                },
            )
            from repro.nic.mcp.connection import SentEntry

            conn.record_sent(SentEntry(seqno=reply.seqno, packet=reply, token=None))
            nic.ensure_retransmit_timer(conn)
            nic.send_queue.put((reply, False))
            self.trace("get_served", key=packet.packet_id)
        else:  # GET_REPLY
            yield from nic.rdma_engine.transfer(packet.payload_bytes)
            nic.rx_buffers.release()
            if port is not None and port.is_open:
                yield from self.cpu("post_event")
                yield from nic.rdma_engine.transfer(EVENT_DMA_BYTES)
                nic.post_host_event(
                    port,
                    GetCompletedEvent(
                        port_id=packet.dst_port,
                        get_id=packet.payload["get_id"],
                        value=packet.payload["value"],
                        size_bytes=packet.payload_bytes,
                    ),
                )
            self.trace("get_completed", key=packet.packet_id)

    # ------------------------------------------------------------------
    def _send_ack(self, remote_node: int):
        nic = self.nic
        conn = nic.connection(remote_node)
        yield from self.cpu("ack_gen")
        packet = nic.make_packet(
            PacketType.ACK,
            dst_node=remote_node,
            dst_port=0,
            src_port=0,
            payload={"cum_seqno": conn.expected_seqno - 1},
        )
        nic.send_queue.put((packet, False))

    def _send_nack(self, remote_node: int):
        nic = self.nic
        conn = nic.connection(remote_node)
        yield from self.cpu("ack_gen")
        packet = nic.make_packet(
            PacketType.NACK,
            dst_node=remote_node,
            dst_port=0,
            src_port=0,
            payload={"expected_seqno": conn.expected_seqno},
        )
        nic.send_queue.put((packet, False))

    def _send_barrier_ack(self, barrier_packet):
        nic = self.nic
        yield from self.cpu("ack_gen")
        packet = nic.make_packet(
            PacketType.BARRIER_ACK,
            dst_node=barrier_packet.src_node,
            dst_port=barrier_packet.src_port,
            src_port=barrier_packet.dst_port,
            payload={
                "acked_port": barrier_packet.src_port,
                "acked_seqno": barrier_packet.seqno,
            },
        )
        nic.send_queue.put((packet, False))
