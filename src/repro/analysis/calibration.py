"""Calibrated system configurations and the paper's measured anchors.

The simulator's free parameters (LANai cycle table, host costs, PCI and
link constants) are fixed once, here, such that the end-to-end simulated
barrier latencies land near the paper's published numbers for *both* NIC
generations simultaneously.  EXPERIMENTS.md records the resulting
paper-vs-measured table; the Figure 5 benches regenerate it.

Anchors from the paper (Section 6):

=============================  =======
host-based PE, 16 nodes, 4.3   181.8 us (= 102.14 x 1.78)
NIC-based PE, 16 nodes, 4.3    102.14 us
NIC-based GB, 16 nodes, 4.3    152.27 us
GB improvement, 16 nodes, 4.3  1.46x
PE improvement, 8 nodes, 4.3   1.66x
host-based PE, 8 nodes, 7.2    90.24 us
NIC-based PE, 8 nodes, 7.2     49.25 us
PE improvement, 8 nodes, 7.2   1.83x
=============================  =======

Qualitative anchors: NIC-PE beats everything at every size; NIC-GB beats
both host barriers except at 2 nodes, where it loses to host-GB "because
of the overhead of processing the barrier algorithm at the NIC".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cluster.builder import ClusterConfig
from repro.host.cpu import HostParams
from repro.network.fabric import NetworkParams
from repro.nic.lanai import LANAI_4_3, LANAI_7_2, LanaiModel
from repro.nic.nic import NicParams


@dataclass(frozen=True)
class PaperAnchor:
    """One published number: latency in us or an improvement factor."""

    description: str
    value: float
    kind: str  # "latency_us" or "factor"


#: The paper's quantitative anchors, keyed by
#: (lanai, nodes, variant) -> anchor.  ``variant`` uses the bench naming:
#: host-pe / nic-pe / host-gb / nic-gb / factor-pe / factor-gb.
PAPER_ANCHORS: Dict[Tuple[str, int, str], PaperAnchor] = {
    ("LANai 4.3", 16, "nic-pe"): PaperAnchor("NIC-based PE, 16 nodes", 102.14, "latency_us"),
    ("LANai 4.3", 16, "host-pe"): PaperAnchor("host-based PE, 16 nodes (derived)", 181.81, "latency_us"),
    ("LANai 4.3", 16, "nic-gb"): PaperAnchor("NIC-based GB, 16 nodes", 152.27, "latency_us"),
    ("LANai 4.3", 16, "host-gb"): PaperAnchor("host-based GB, 16 nodes (derived)", 222.31, "latency_us"),
    ("LANai 4.3", 16, "factor-pe"): PaperAnchor("PE improvement, 16 nodes", 1.78, "factor"),
    ("LANai 4.3", 16, "factor-gb"): PaperAnchor("GB improvement, 16 nodes", 1.46, "factor"),
    ("LANai 4.3", 8, "factor-pe"): PaperAnchor("PE improvement, 8 nodes", 1.66, "factor"),
    ("LANai 7.2", 8, "nic-pe"): PaperAnchor("NIC-based PE, 8 nodes", 49.25, "latency_us"),
    ("LANai 7.2", 8, "host-pe"): PaperAnchor("host-based PE, 8 nodes", 90.24, "latency_us"),
    ("LANai 7.2", 8, "factor-pe"): PaperAnchor("PE improvement, 8 nodes", 1.83, "factor"),
}


@dataclass(frozen=True)
class SystemCalibration:
    """A fully parameterized testbed reproduction."""

    name: str
    lanai_model: LanaiModel
    host_params: HostParams = field(default_factory=HostParams)
    nic_params: NicParams = field(default_factory=NicParams)
    net_params: NetworkParams = field(default_factory=NetworkParams)
    #: Sizes the paper evaluates on this system.
    sizes: Tuple[int, ...] = (2, 4, 8, 16)

    def cluster_config(self, num_nodes: int, **overrides) -> ClusterConfig:
        """A ClusterConfig for this testbed at the given size."""
        cfg = ClusterConfig(
            num_nodes=num_nodes,
            lanai_model=self.lanai_model,
            host_params=self.host_params,
            nic_params=self.nic_params,
            net_params=self.net_params,
        )
        return cfg.with_(**overrides) if overrides else cfg

    def anchor(self, num_nodes: int, variant: str) -> Optional[PaperAnchor]:
        """The paper's published number for (size, variant), if any."""
        return PAPER_ANCHORS.get((self.lanai_model.name, num_nodes, variant))


#: The paper's 16-node LANai 4.3 system (33 MHz NICs, 16-port switch).
LANAI_4_3_SYSTEM = SystemCalibration(
    name="16x dual-PII-300 / LANai 4.3 / 16-port switch",
    lanai_model=LANAI_4_3,
    sizes=(2, 4, 8, 16),
)

#: The paper's 8-node LANai 7.2 system (66 MHz NICs, 8-port switch).
LANAI_7_2_SYSTEM = SystemCalibration(
    name="8x dual-PII-300 / LANai 7.2 / 8-port switch",
    lanai_model=LANAI_7_2,
    sizes=(2, 4, 8),
)
