"""The Figure-5 sweep, defined once, executed through the campaign layer.

Historically the Figure 5 reproduction was spelled out twice -- in
``benchmarks/conftest.py`` (session fixtures for the 5a--5d benches) and
in ``repro.analysis.report`` (the CLI) -- each hand-rolling the same
serial loop over sizes, variants and GB tree dimensions.  This module is
now the single source of truth: it builds the sweep as a
:class:`~repro.campaign.spec.CampaignSpec` (one job per size, variant
and GB dimension), runs it through
:func:`~repro.campaign.executor.run_campaign`, and reassembles the
campaign results into the ``results[variant][n]`` mapping every consumer
already expects (GB reported at the best dimension per size, exactly as
the paper does).

Because each (variant, size, dimension) measurement is its own job, the
sweep parallelizes to its natural grain and every point is individually
cached by content hash -- rerunning an unchanged sweep performs zero
simulations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.calibration import SystemCalibration
from repro.analysis.experiments import BarrierMeasurement
from repro.campaign.executor import CampaignResult, run_campaign
from repro.campaign.serialize import cluster_config_to_dict
from repro.campaign.spec import CampaignSpec
from repro.cluster.builder import ClusterConfig

#: The four series of every Figure-5 panel.
VARIANTS = ("host-pe", "nic-pe", "host-gb", "nic-gb")

#: Repetitions per measurement for the paper-reproduction benches and
#: the full report: the paper averaged 100k noisy hardware runs; the
#: simulator is deterministic, so a handful suffices.  (Moved here from
#: ``benchmarks/conftest.py`` so the benches and the CLI agree.)
BENCH_REPS = 6
BENCH_WARMUP = 2

#: The --quick counterparts used by ``report.py --quick`` and CI smokes.
QUICK_REPS = 3
QUICK_WARMUP = 1


def _gb_dims(n: int, gb_dimensions: Optional[Sequence[int]]) -> List[int]:
    """Valid GB tree dimensions for an ``n``-node group (paper: sweep
    every dimension from 1 to N-1 and keep the minimum latency)."""
    dims = range(1, n) if gb_dimensions is None else gb_dimensions
    dims = [d for d in dims if 1 <= d <= n - 1]
    if not dims:
        raise ValueError(f"no valid GB dimensions for a {n}-node group")
    return dims


def sweep_points(
    sizes: Sequence[int],
    gb_dimensions: Optional[Sequence[int]] = None,
) -> List[dict]:
    """The sweep as campaign points: PE host+NIC at every size, and one
    point per GB dimension (host and NIC) wherever GB is defined."""
    points: List[dict] = []
    for n in sizes:
        points.append({"num_nodes": n, "nic_based": False, "algorithm": "pe"})
        points.append({"num_nodes": n, "nic_based": True, "algorithm": "pe"})
        if n >= 2:
            for nic_based in (False, True):
                for dim in _gb_dims(n, gb_dimensions):
                    points.append(
                        {
                            "num_nodes": n,
                            "nic_based": nic_based,
                            "algorithm": "gb",
                            "dimension": dim,
                        }
                    )
    return points


def sweep_spec(
    config: ClusterConfig,
    sizes: Sequence[int],
    *,
    name: str = "figure5",
    repetitions: int,
    warmup: int,
    gb_dimensions: Optional[Sequence[int]] = None,
    skew_max_us: float = 0.0,
) -> CampaignSpec:
    """A Figure-5 style sweep over ``sizes`` on an arbitrary config."""
    return CampaignSpec(
        name=name,
        base_config=cluster_config_to_dict(config),
        points=sweep_points(sizes, gb_dimensions),
        repetitions=repetitions,
        warmup=warmup,
        skew_max_us=skew_max_us,
    )


def figure5_spec(
    system: SystemCalibration,
    *,
    repetitions: int = BENCH_REPS,
    warmup: int = BENCH_WARMUP,
    sizes: Optional[Sequence[int]] = None,
    gb_dimensions: Optional[Sequence[int]] = None,
) -> CampaignSpec:
    """The published sweep of one calibrated testbed (sizes from the
    paper unless overridden)."""
    sizes = tuple(sizes if sizes is not None else system.sizes)
    return sweep_spec(
        system.cluster_config(max(sizes)),
        sizes,
        name=f"fig5-{system.lanai_model.name.replace(' ', '').lower()}",
        repetitions=repetitions,
        warmup=warmup,
        gb_dimensions=gb_dimensions,
    )


def assemble_sweep(
    result: CampaignResult,
    lanai_name: Optional[str] = None,
) -> Dict[str, Dict[int, BarrierMeasurement]]:
    """Reassemble campaign results into ``results[variant][n]``.

    GB entries collapse to the best (minimum mean latency) dimension per
    size, keeping the *first* minimum in job order -- dimensions compile
    in ascending order, so ties resolve exactly as the historical serial
    ``best_gb_dimension`` loop did.  With ``lanai_name`` only jobs of
    that card are considered (so one campaign can carry both testbeds).
    Raises :class:`~repro.campaign.executor.CampaignJobError` if a
    needed job failed.
    """
    sweep: Dict[str, Dict[int, BarrierMeasurement]] = {
        v: {} for v in VARIANTS
    }
    for job in result.results:
        if job.spec.kind != "measure":
            continue
        if lanai_name is not None:
            if job.spec.config["lanai_model"]["name"] != lanai_name:
                continue
        if not job.ok:
            from repro.campaign.executor import CampaignJobError

            raise CampaignJobError(job)
        params = job.spec.params
        variant = (
            f"{'nic' if params['nic_based'] else 'host'}-{params['algorithm']}"
        )
        if variant not in sweep:
            continue
        n = job.spec.config["num_nodes"]
        measurement = BarrierMeasurement.from_dict(job.value)
        best = sweep[variant].get(n)
        if best is None or measurement.mean_latency_us < best.mean_latency_us:
            sweep[variant][n] = measurement
    return sweep


def run_measure_sweep(
    config: ClusterConfig,
    sizes: Sequence[int],
    *,
    repetitions: int,
    warmup: int,
    gb_dimensions: Optional[Sequence[int]] = None,
    jobs: int = 1,
    store=None,
    cache_dir=None,
    name: str = "sweep",
) -> Tuple[Dict[str, Dict[int, BarrierMeasurement]], CampaignResult]:
    """Run a Figure-5 style sweep on ``config``; returns (sweep, run)."""
    spec = sweep_spec(
        config, sizes, name=name,
        repetitions=repetitions, warmup=warmup, gb_dimensions=gb_dimensions,
    )
    result = run_campaign(spec, jobs=jobs, store=store, cache_dir=cache_dir)
    return assemble_sweep(result), result


def run_figure5(
    system: SystemCalibration,
    *,
    repetitions: int = BENCH_REPS,
    warmup: int = BENCH_WARMUP,
    sizes: Optional[Sequence[int]] = None,
    gb_dimensions: Optional[Sequence[int]] = None,
    jobs: int = 1,
    store=None,
    cache_dir=None,
) -> Tuple[Dict[str, Dict[int, BarrierMeasurement]], CampaignResult]:
    """Run one testbed's published Figure-5 sweep; returns (sweep, run)."""
    spec = figure5_spec(
        system, repetitions=repetitions, warmup=warmup,
        sizes=sizes, gb_dimensions=gb_dimensions,
    )
    result = run_campaign(spec, jobs=jobs, store=store, cache_dir=cache_dir)
    return assemble_sweep(result), result
