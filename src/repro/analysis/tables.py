"""Plain-text result tables shared by benches and examples."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
    floatfmt: str = ".2f",
) -> str:
    """Render an aligned monospace table."""

    def cell(v: Any) -> str:
        if isinstance(v, float):
            return format(v, floatfmt)
        return str(v)

    str_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, s in enumerate(row):
            widths[i] = max(widths[i], len(s))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(s.rjust(w) for s, w in zip(cells, widths))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    for row in str_rows:
        out.append(line(row))
    return "\n".join(out)


def paper_vs_measured_row(
    label: str, paper: Optional[float], measured: float
) -> List[Any]:
    """A row comparing a paper anchor to a measured value."""
    if paper is None:
        return [label, "-", measured, "-"]
    return [label, paper, measured, measured / paper]
