"""Bench regression sentinel: robust baselines over `BENCH_*.json` files.

The repo accumulates benchmark artifacts with very different shapes —
`BENCH_engine.json` keeps a *trajectory* (one entry per recorded
stage), `BENCH_nbc.json` a grid of sweep rows, `BENCH_campaign.json`
totals plus per-job results.  The sentinel normalizes any of them to a
list of ``{label, metrics}`` entries, fits a per-metric baseline over
all entries **before the last one** (median + MAD — robust to a single
outlier stage), and flags the last entry's metrics that land outside a
configurable band:

    band = max(mad_k * MAD, rel_tol * |median|)

Whether a delta is a *regression* or an *improvement* depends on the
metric's direction, inferred from its name (``*_eps``/``*speedup``/
``*overlap_pct`` are higher-is-better; ``*_us``/``*_s``/``*latency``/
``*failed`` lower-is-better; anything else flags on either side).
Metrics with no prior history report ``no_history`` and never fail.

CLI (the CI gate)::

    python -m repro.analysis.sentinel BENCH_engine.json BENCH_nbc.json
    python -m repro.analysis.sentinel --strict BENCH_campaign.json

Exit status is 0 unless ``--strict`` is given and a regression was
flagged — so the same command runs first as a non-blocking report and
then as a blocking gate.  ``--baseline FILE`` prepends another
artifact's entries as history (how single-entry artifacts such as a CI
run's fresh `BENCH_campaign.json` get compared against the committed
one).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table

DEFAULT_REL_TOL = 0.15
DEFAULT_MAD_K = 5.0

HIGHER_BETTER_SUFFIXES = (
    "_eps",
    "speedup",
    "overlap_pct",
    "_hits",
    "throughput",
    "saved_us_per_iter",
)
LOWER_BETTER_SUFFIXES = (
    "_us",
    "_s",
    "latency",
    "elapsed",
    "failed",
    "dropped",
    "stalls",
)

__all__ = [
    "MetricCheck",
    "SentinelReport",
    "metric_direction",
    "extract_entries",
    "check_entries",
    "check_file",
    "main",
]


def metric_direction(name: str) -> str:
    """``higher`` / ``lower`` / ``both`` — which deltas are regressions."""
    base = name.rsplit(".", 1)[-1]
    for suffix in HIGHER_BETTER_SUFFIXES:
        if base.endswith(suffix):
            return "higher"
    for suffix in LOWER_BETTER_SUFFIXES:
        if base.endswith(suffix):
            return "lower"
    return "both"


@dataclass
class MetricCheck:
    """One metric of the newest entry judged against its history."""

    metric: str
    value: float
    status: str  # ok | regression | improvement | no_history
    direction: str
    baseline: Optional[float] = None
    mad: Optional[float] = None
    band: Optional[float] = None
    delta: Optional[float] = None
    history: int = 0

    @property
    def delta_pct(self) -> Optional[float]:
        """Delta as a percentage of the baseline (None if undefined)."""
        if self.delta is None or not self.baseline:
            return None
        return 100.0 * self.delta / abs(self.baseline)


@dataclass
class SentinelReport:
    """All checks for one artifact."""

    path: str
    style: str  # trajectory | rows | campaign | flat
    label: str
    checks: List[MetricCheck]

    @property
    def regressions(self) -> List[MetricCheck]:
        """The checks that flagged as regressions."""
        return [c for c in self.checks if c.status == "regression"]

    @property
    def has_regressions(self) -> bool:
        """True when any metric regressed (the --strict exit signal)."""
        return bool(self.regressions)

    def render_table(self) -> str:
        """Human-readable check table, regressions sorted first."""
        rows = []
        for c in sorted(self.checks, key=lambda c: (c.status != "regression", c.metric)):
            if c.status == "no_history":
                rows.append([c.metric, f"{c.value:g}", "-", "-", "no_history"])
                continue
            pct = c.delta_pct
            rows.append(
                [
                    c.metric,
                    f"{c.value:g}",
                    f"{c.baseline:g}",
                    f"{pct:+.1f}%" if pct is not None else f"{c.delta:+g}",
                    c.status,
                ]
            )
        head = f"sentinel: {self.path} [{self.style}] newest={self.label}\n"
        verdict = (
            f"{len(self.regressions)} regression(s) flagged"
            if self.has_regressions
            else "no regressions"
        )
        return head + format_table(
            ["metric", "value", "baseline", "delta", "status"], rows
        ) + f"\n{verdict}\n"

    def summary(self) -> Dict[str, object]:
        """JSON-able form (what ``--json`` writes)."""
        return {
            "path": self.path,
            "style": self.style,
            "label": self.label,
            "regressions": [c.metric for c in self.regressions],
            "checks": [
                {
                    "metric": c.metric,
                    "value": c.value,
                    "baseline": c.baseline,
                    "band": c.band,
                    "delta": c.delta,
                    "direction": c.direction,
                    "status": c.status,
                    "history": c.history,
                }
                for c in self.checks
            ],
        }


def _numeric_items(mapping: Dict[str, object]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for key, value in mapping.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        out[key] = float(value)
    return out


def extract_entries(doc: dict) -> Tuple[str, List[dict]]:
    """Normalize any BENCH artifact to ``(style, [{label, metrics}])``.

    - engine-style ``trajectory`` → one entry per stage;
    - nbc-style ``rows`` → one entry, metrics keyed per sweep cell;
    - campaign-style ``totals``/``jobs`` → one entry: totals, elapsed,
      and each successful job's mean latency keyed by tag;
    - anything else → one entry of the document's top-level numerics.
    """
    if "trajectory" in doc:
        entries = []
        for stage in doc["trajectory"]:
            entries.append(
                {
                    "label": str(stage.get("stage", f"entry{len(entries)}")),
                    "metrics": _numeric_items(stage),
                }
            )
        return "trajectory", entries
    if "rows" in doc:
        metrics: Dict[str, float] = {}
        for row in doc["rows"]:
            cell = f"c{row.get('compute_us', 0):g}s{row.get('skew_max_us', 0):g}"
            for key, value in _numeric_items(row).items():
                if key in ("compute_us", "skew_max_us", "num_nodes", "iterations"):
                    continue  # grid coordinates, not measurements
                metrics[f"{cell}.{key}"] = value
        label = str(doc.get("benchmark", "rows"))
        return "rows", [{"label": label, "metrics": metrics}]
    if "totals" in doc or "jobs" in doc:
        metrics = {}
        for key, value in _numeric_items(doc.get("totals", {})).items():
            if key in ("cache_hits", "simulated"):
                continue  # cache state, not performance: a warm rerun
                # legitimately flips these without anything regressing
            metrics[f"totals.{key}"] = value
        if isinstance(doc.get("elapsed_s"), (int, float)):
            metrics["elapsed_s"] = float(doc["elapsed_s"])
        for job in doc.get("jobs", []):
            result = job.get("result") or {}
            tag = job.get("tag")
            if tag and isinstance(result.get("mean_latency_us"), (int, float)):
                metrics[f"{tag}.mean_latency_us"] = float(result["mean_latency_us"])
        label = str(doc.get("campaign", "campaign"))
        return "campaign", [{"label": label, "metrics": metrics}]
    return "flat", [{"label": "document", "metrics": _numeric_items(doc)}]


def fit_baseline(values: Sequence[float]) -> Tuple[float, float]:
    """(median, MAD) of the history values."""
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    median = ordered[mid] if n % 2 else 0.5 * (ordered[mid - 1] + ordered[mid])
    deviations = sorted(abs(v - median) for v in ordered)
    mad = deviations[mid] if n % 2 else 0.5 * (deviations[mid - 1] + deviations[mid])
    return median, mad


def check_entries(
    entries: Sequence[dict],
    *,
    rel_tol: float = DEFAULT_REL_TOL,
    mad_k: float = DEFAULT_MAD_K,
) -> List[MetricCheck]:
    """Judge the last entry's metrics against all earlier entries."""
    if not entries:
        return []
    newest = entries[-1]
    history = entries[:-1]
    checks: List[MetricCheck] = []
    for metric, value in sorted(newest["metrics"].items()):
        prior = [
            e["metrics"][metric] for e in history if metric in e["metrics"]
        ]
        direction = metric_direction(metric)
        if not prior:
            checks.append(
                MetricCheck(
                    metric=metric, value=value, status="no_history",
                    direction=direction,
                )
            )
            continue
        median, mad = fit_baseline(prior)
        band = max(mad_k * mad, rel_tol * abs(median), 1e-12)
        delta = value - median
        if direction == "higher":
            regressed, improved = delta < -band, delta > band
        elif direction == "lower":
            regressed, improved = delta > band, delta < -band
        else:
            regressed, improved = abs(delta) > band, False
        status = "regression" if regressed else ("improvement" if improved else "ok")
        checks.append(
            MetricCheck(
                metric=metric,
                value=value,
                status=status,
                direction=direction,
                baseline=median,
                mad=mad,
                band=band,
                delta=delta,
                history=len(prior),
            )
        )
    return checks


def check_file(
    path: str,
    *,
    baselines: Sequence[str] = (),
    rel_tol: float = DEFAULT_REL_TOL,
    mad_k: float = DEFAULT_MAD_K,
) -> SentinelReport:
    """Load one artifact (plus optional history files) and judge it."""
    with open(path) as fh:
        doc = json.load(fh)
    style, entries = extract_entries(doc)
    history: List[dict] = []
    for base_path in baselines:
        with open(base_path) as fh:
            base_doc = json.load(fh)
        _, base_entries = extract_entries(base_doc)
        history.extend(base_entries)
    entries = history + entries
    checks = check_entries(entries, rel_tol=rel_tol, mad_k=mad_k)
    return SentinelReport(
        path=path, style=style, label=str(entries[-1]["label"]) if entries else "",
        checks=checks,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.sentinel",
        description="Flag bench-metric regressions against robust baselines.",
    )
    parser.add_argument("files", nargs="+", metavar="BENCH.json",
                        help="bench artifacts to check (newest entry judged)")
    parser.add_argument("--baseline", action="append", default=[], metavar="FILE",
                        help="artifact whose entries are prepended as history "
                             "(repeatable; for single-entry artifacts)")
    parser.add_argument("--rel-tol", type=float, default=DEFAULT_REL_TOL,
                        help="relative band around the median "
                             f"(default {DEFAULT_REL_TOL})")
    parser.add_argument("--mad-k", type=float, default=DEFAULT_MAD_K,
                        help=f"MAD multiplier for the band (default {DEFAULT_MAD_K})")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any regression is flagged "
                             "(default: report only)")
    parser.add_argument("--json", metavar="OUT", default=None,
                        help="also write the machine-readable summaries here")
    args = parser.parse_args(argv)

    reports = [
        check_file(path, baselines=args.baseline,
                   rel_tol=args.rel_tol, mad_k=args.mad_k)
        for path in args.files
    ]
    for report in reports:
        print(report.render_table())
    if args.json:
        with open(args.json, "w") as fh:
            json.dump([r.summary() for r in reports], fh, indent=1, sort_keys=True)
            fh.write("\n")
    flagged = [r for r in reports if r.has_regressions]
    if flagged:
        names = ", ".join(r.path for r in flagged)
        print(f"sentinel: regressions in {names}", file=sys.stderr)
        if args.strict:
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
