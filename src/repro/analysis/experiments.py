"""Barrier latency measurement harness.

Reproduces the paper's methodology (Section 6): "we ran 100,000 barriers
consecutively and took the average latency."  A run executes ``warmup +
repetitions`` *consecutive* barriers in one simulation (so steady-state
effects -- unexpected-message records carrying over, ACK traffic from the
previous barrier -- are included, exactly as in the real measurement) and
averages the per-barrier latency over the measured repetitions.

Latency definition: barrier ``i``'s latency is ``t_exit_max(i) -
t_enter(i)`` where ``t_enter`` is the common instant all ranks initiate
(ranks are resynchronized by the previous barrier; optional random skew
models asynchronous arrival) and ``t_exit_max`` is when the *last* rank
observes completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.builder import Cluster, ClusterConfig, build_cluster
from repro.cluster.runner import default_group, run_on_group
from repro.core.barrier import barrier as nic_barrier_op
from repro.core.host_barrier import host_barrier as host_barrier_op
from repro.sim.primitives import Timeout

Endpoint = Tuple[int, int]

#: Default repetition counts: enough for a stable mean in a deterministic
#: simulator (the paper needed 100k on real noisy hardware).
DEFAULT_WARMUP = 3
DEFAULT_REPS = 12


@dataclass
class BarrierMeasurement:
    """Result of one barrier-latency measurement."""

    num_nodes: int
    algorithm: str
    nic_based: bool
    dimension: Optional[int]
    mean_latency_us: float
    min_latency_us: float
    max_latency_us: float
    per_barrier_us: List[float] = field(repr=False, default_factory=list)
    lanai_name: str = ""
    #: Optional :meth:`repro.analysis.critical_path.CriticalPath.summary`
    #: of one traced barrier at the same config (None unless the
    #: measurement was asked for it).
    critical_path: Optional[dict] = field(repr=False, default=None)
    #: Optional :meth:`repro.telemetry.sampler.Telemetry.summary` of the
    #: measurement run itself (the sampler only reads component state,
    #: so latencies are bit-identical with or without it).
    telemetry: Optional[dict] = field(repr=False, default=None)

    @property
    def label(self) -> str:
        """Short display name, e.g. "NIC-GB dim=3"."""
        where = "NIC" if self.nic_based else "host"
        dim = f" dim={self.dimension}" if self.dimension is not None else ""
        return f"{where}-{self.algorithm.upper()}{dim}"

    def to_dict(self) -> dict:
        """A JSON-able dict (the campaign ResultStore payload schema).

        Floats survive exactly: JSON's shortest-repr rendering
        round-trips IEEE-754 doubles bit-for-bit.
        """
        return {
            "num_nodes": self.num_nodes,
            "algorithm": self.algorithm,
            "nic_based": self.nic_based,
            "dimension": self.dimension,
            "mean_latency_us": self.mean_latency_us,
            "min_latency_us": self.min_latency_us,
            "max_latency_us": self.max_latency_us,
            "per_barrier_us": list(self.per_barrier_us),
            "lanai_name": self.lanai_name,
            "critical_path": self.critical_path,
            "telemetry": self.telemetry,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BarrierMeasurement":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


def _barrier_loop_program(
    ctx,
    *,
    nic_based: bool,
    algorithm: str,
    dimension: Optional[int],
    repetitions: int,
    skew_max_us: float,
    enter_times: Dict[int, List[float]],
    exit_times: Dict[int, List[float]],
):
    """Per-rank program: run ``repetitions`` consecutive barriers."""
    rng = ctx.cluster.rng
    for rep in range(repetitions):
        if skew_max_us > 0:
            delay = rng.uniform(f"skew.{ctx.rank}.{rep}", 0.0, skew_max_us)
            if delay > 0:
                yield Timeout(delay)
        enter_times.setdefault(rep, []).append(ctx.now)
        if nic_based:
            yield from nic_barrier_op(
                ctx.port, ctx.group, ctx.rank, algorithm=algorithm, dimension=dimension
            )
        else:
            yield from host_barrier_op(
                ctx.port, ctx.group, ctx.rank, algorithm=algorithm, dimension=dimension
            )
        exit_times.setdefault(rep, []).append(ctx.now)
    return ctx.now


def measure_barrier(
    config: ClusterConfig,
    *,
    nic_based: bool,
    algorithm: str = "pe",
    dimension: Optional[int] = None,
    repetitions: int = DEFAULT_REPS,
    warmup: int = DEFAULT_WARMUP,
    skew_max_us: float = 0.0,
    group: Optional[Sequence[Endpoint]] = None,
    max_events: Optional[int] = 20_000_000,
    critical_path: bool = False,
    telemetry: bool = False,
) -> BarrierMeasurement:
    """Measure the average latency of consecutive barriers on a fresh
    cluster built from ``config``.

    With ``critical_path`` (NIC barriers only), one additional traced
    barrier runs on a fresh cluster at the same config and its
    happens-before critical path is attached to the measurement as a
    JSON-able summary (see :mod:`repro.analysis.critical_path`).  The
    measurement itself is untouched: the extra run is a separate
    simulation, so the reported latencies stay bit-identical to a
    ``critical_path=False`` call.

    With ``telemetry``, the measurement cluster itself samples
    component time series (see :mod:`repro.telemetry`) and the digest
    lands on ``BarrierMeasurement.telemetry``.  The sampler is a pure
    reader scheduled at low priority, so the reported latencies are
    bit-identical to a ``telemetry=False`` run (asserted by
    ``tests/test_telemetry.py``).
    """
    if telemetry and not config.telemetry:
        config = config.with_(telemetry=True)
    cluster = build_cluster(config)
    if group is None:
        group = default_group(cluster)
    enter_times: Dict[int, List[float]] = {}
    exit_times: Dict[int, List[float]] = {}
    total = warmup + repetitions
    run_on_group(
        cluster,
        _barrier_loop_program,
        group=group,
        max_events=max_events,
        nic_based=nic_based,
        algorithm=algorithm,
        dimension=dimension,
        repetitions=total,
        skew_max_us=skew_max_us,
        enter_times=enter_times,
        exit_times=exit_times,
    )
    per_barrier = []
    for rep in range(warmup, total):
        start = max(enter_times[rep])
        end = max(exit_times[rep])
        per_barrier.append(end - start)
    cp_summary: Optional[dict] = None
    if critical_path and nic_based:
        from repro.analysis.critical_path import traced_barrier_run

        _, path, _ = traced_barrier_run(
            len(group),
            algorithm=algorithm,
            dimension=dimension,
            config=config,
            max_events=max_events,
        )
        cp_summary = path.summary()
    tel_summary: Optional[dict] = None
    if cluster.telemetry.enabled:
        tel_summary = cluster.telemetry.summary()
    return BarrierMeasurement(
        num_nodes=len(group),
        algorithm=algorithm,
        nic_based=nic_based,
        dimension=dimension,
        mean_latency_us=sum(per_barrier) / len(per_barrier),
        min_latency_us=min(per_barrier),
        max_latency_us=max(per_barrier),
        per_barrier_us=per_barrier,
        lanai_name=config.lanai_model.name,
        critical_path=cp_summary,
        telemetry=tel_summary,
    )


def best_gb_dimension(
    config: ClusterConfig,
    *,
    nic_based: bool,
    repetitions: int = DEFAULT_REPS,
    warmup: int = DEFAULT_WARMUP,
    group: Optional[Sequence[Endpoint]] = None,
    dimensions: Optional[Sequence[int]] = None,
) -> BarrierMeasurement:
    """GB latency minimized over tree dimension.

    The paper: "we ran the test for every dimension from 1 to N-1 ...  The
    latencies reported in the graphs are the minimum latencies over all
    dimensions."
    """
    n = config.num_nodes if group is None else len(group)
    if n < 2:
        raise ValueError("GB dimension sweep needs at least 2 nodes")
    if dimensions is None:
        dimensions = range(1, n)
    dimensions = [d for d in dimensions if 1 <= d <= n - 1]
    if not dimensions:
        raise ValueError(f"no valid GB dimensions for a {n}-node group")
    best: Optional[BarrierMeasurement] = None
    for dim in dimensions:
        m = measure_barrier(
            config,
            nic_based=nic_based,
            algorithm="gb",
            dimension=dim,
            repetitions=repetitions,
            warmup=warmup,
            group=group,
        )
        if best is None or m.mean_latency_us < best.mean_latency_us:
            best = m
    assert best is not None
    return best


def measure_barrier_sweep(
    config: ClusterConfig,
    sizes: Sequence[int],
    *,
    repetitions: int = DEFAULT_REPS,
    warmup: int = DEFAULT_WARMUP,
    gb_dimensions: Optional[Sequence[int]] = None,
    jobs: int = 1,
    store=None,
    cache_dir=None,
) -> Dict[str, Dict[int, BarrierMeasurement]]:
    """The full Figure-5 style sweep: all four barrier variants across
    system sizes.  Returns ``results[variant][n]`` with variants
    ``host-pe``, ``nic-pe``, ``host-gb``, ``nic-gb`` (GB at the best
    dimension per size).

    The sweep is submitted through :mod:`repro.campaign` -- one job per
    (size, variant, GB dimension) -- so it can fan out over ``jobs``
    worker processes and reuse cached results from ``store`` /
    ``cache_dir``.  The default (``jobs=1``, no store) runs everything
    inline and is bit-identical to the historical serial loop.
    """
    from repro.analysis.figure5 import run_measure_sweep

    sweep, _ = run_measure_sweep(
        config,
        sizes,
        repetitions=repetitions,
        warmup=warmup,
        gb_dimensions=gb_dimensions,
        jobs=jobs,
        store=store,
        cache_dir=cache_dir,
    )
    return sweep
