"""Communication/computation overlap measurement for Ibarrier.

The blocking barrier serializes a superstep: ``compute, then wait for
the barrier``.  The non-blocking schedule engine lets the host start the
barrier *first* and compute while the schedule progresses -- the fuzzy
barrier of the paper's Section 1, but built on the compiled-schedule
machinery of :mod:`repro.mpi.nbc` instead of the NIC barrier engine, so
it also applies to Ibcast/Iallreduce shapes.

Methodology (one measurement = three fresh simulations of the same
cluster config, so the comparison is apples-to-apples on identical
seeded skew):

* **blocking** -- per iteration: compute ``compute_us``, then
  ``ibarrier(); wait()`` immediately.  Zero overlap by construction;
  this is the baseline the acceptance gate compares against.
* **overlapped** -- per iteration: ``ibarrier()`` first, then compute in
  ``chunk_us`` chunks with a cheap ``request.test()`` poll between
  chunks, then ``wait()``.
* **pure** -- per iteration: ``ibarrier(); wait()`` with no compute at
  all: the pure communication latency that overlap could at best hide.

The headline number is ``overlap_pct``: the fraction of the pure
communication latency hidden behind compute, ``(blocking - overlapped) /
pure * 100`` per iteration.  The blocking baseline's overlap is 0% by
definition, so any strictly positive ``overlap_pct`` demonstrates real
communication/computation overlap.

A ``skew_max_us`` dimension staggers iteration entry per rank with the
cluster's seeded RNG (same draws in all three modes), probing whether
overlap survives load imbalance -- late arrivals eat into the window in
which early ranks can hide communication.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.cluster.runner import default_group, run_on_group
from repro.mpi.communicator import Communicator, MpiParams
from repro.sim.primitives import Timeout

#: Defaults mirroring examples/fuzzy_barrier_overlap.py, now measured.
DEFAULT_ITERATIONS = 10
DEFAULT_COMPUTE_US = 60.0
DEFAULT_CHUNK_US = 5.0


@dataclass
class OverlapMeasurement:
    """Result of one Ibarrier-overlap measurement (JSON-able)."""

    num_nodes: int
    iterations: int
    compute_us: float
    chunk_us: float
    skew_max_us: float
    #: Total runtime (max over ranks) per mode, microseconds.
    blocking_total_us: float
    overlapped_total_us: float
    pure_total_us: float
    #: Fraction of the pure communication latency hidden by overlap
    #: (blocking baseline is 0 by construction).
    overlap_pct: float
    #: Saved wall time per iteration, microseconds.
    saved_us_per_iter: float
    lanai_name: str = ""
    #: Rank-0 schedule-cache counters from the overlapped run.
    cache: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """A JSON-able dict (the campaign ResultStore payload schema)."""
        return {
            "num_nodes": self.num_nodes,
            "iterations": self.iterations,
            "compute_us": self.compute_us,
            "chunk_us": self.chunk_us,
            "skew_max_us": self.skew_max_us,
            "blocking_total_us": self.blocking_total_us,
            "overlapped_total_us": self.overlapped_total_us,
            "pure_total_us": self.pure_total_us,
            "overlap_pct": self.overlap_pct,
            "saved_us_per_iter": self.saved_us_per_iter,
            "lanai_name": self.lanai_name,
            "cache": dict(self.cache),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OverlapMeasurement":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


def _skew(ctx, rep: int, skew_max_us: float):
    """Per-rank, per-iteration seeded entry skew (host generator)."""
    if skew_max_us > 0:
        delay = ctx.cluster.rng.uniform(
            f"nbc_skew.{ctx.rank}.{rep}", 0.0, skew_max_us
        )
        if delay > 0:
            yield Timeout(delay)


def _blocking_program(ctx, *, iterations, compute_us, skew_max_us, params):
    """Compute, then synchronize: the zero-overlap baseline."""
    comm = Communicator(ctx.port, ctx.group, ctx.rank, params=params)
    for rep in range(iterations):
        yield from _skew(ctx, rep, skew_max_us)
        if compute_us > 0:
            yield from ctx.node.compute(compute_us)
        request = yield from comm.ibarrier()
        yield from request.wait()
    return ctx.now, comm.nbc.cache.stats.as_dict()


def _overlapped_program(ctx, *, iterations, compute_us, chunk_us,
                        skew_max_us, params):
    """Start the barrier first, compute while the schedule progresses."""
    comm = Communicator(ctx.port, ctx.group, ctx.rank, params=params)
    for rep in range(iterations):
        yield from _skew(ctx, rep, skew_max_us)
        request = yield from comm.ibarrier()
        remaining = compute_us
        while remaining > 0:
            chunk = min(chunk_us, remaining)
            yield from ctx.node.compute(chunk)
            remaining -= chunk
            yield from request.test()
        yield from request.wait()
    return ctx.now, comm.nbc.cache.stats.as_dict()


def _pure_program(ctx, *, iterations, skew_max_us, params):
    """Ibarrier alone: the communication latency overlap could hide."""
    result = yield from _blocking_program(
        ctx, iterations=iterations, compute_us=0.0,
        skew_max_us=skew_max_us, params=params,
    )
    return result


def measure_nbc_overlap(
    config: ClusterConfig,
    *,
    iterations: int = DEFAULT_ITERATIONS,
    compute_us: float = DEFAULT_COMPUTE_US,
    chunk_us: float = DEFAULT_CHUNK_US,
    skew_max_us: float = 0.0,
    params: Optional[MpiParams] = None,
    max_events: Optional[int] = 20_000_000,
) -> OverlapMeasurement:
    """Measure Ibarrier overlap on fresh clusters built from ``config``.

    Three simulations (blocking / overlapped / pure), identical configs
    and identical seeded skew draws; returns an
    :class:`OverlapMeasurement` with the achieved ``overlap_pct``.
    """

    def run(program, **kwargs):
        cluster = build_cluster(config)
        results = run_on_group(
            cluster, program, group=default_group(cluster),
            max_events=max_events, iterations=iterations,
            skew_max_us=skew_max_us, params=params, **kwargs,
        )
        return (
            max(now for now, _ in results),
            results[0][1],
        )

    blocking_total, _ = run(
        _blocking_program, compute_us=compute_us,
    )
    overlapped_total, cache = run(
        _overlapped_program, compute_us=compute_us, chunk_us=chunk_us,
    )
    pure_total, _ = run(_pure_program)

    saved_per_iter = (blocking_total - overlapped_total) / iterations
    pure_per_iter = pure_total / iterations
    overlap_pct = 100.0 * saved_per_iter / pure_per_iter if pure_per_iter else 0.0
    return OverlapMeasurement(
        num_nodes=config.num_nodes,
        iterations=iterations,
        compute_us=compute_us,
        chunk_us=chunk_us,
        skew_max_us=skew_max_us,
        blocking_total_us=blocking_total,
        overlapped_total_us=overlapped_total,
        pure_total_us=pure_total,
        overlap_pct=overlap_pct,
        saved_us_per_iter=saved_per_iter,
        lanai_name=config.lanai_model.name,
        cache=cache,
    )


# ---------------------------------------------------------------------------
# the sweep, through the cached campaign layer (like Figure 5)
# ---------------------------------------------------------------------------
#: Default sweep axes: compute interval vs. entry skew.
DEFAULT_COMPUTE_GRID = (20.0, 60.0, 120.0)
DEFAULT_SKEW_GRID = (0.0, 50.0)


def overlap_sweep_spec(
    config: ClusterConfig,
    *,
    compute_grid: Sequence[float] = DEFAULT_COMPUTE_GRID,
    skew_grid: Sequence[float] = DEFAULT_SKEW_GRID,
    iterations: int = DEFAULT_ITERATIONS,
    chunk_us: float = DEFAULT_CHUNK_US,
    name: str = "nbc-overlap",
):
    """The overlap sweep as an ``nbc_overlap``-kind campaign spec.

    Each (compute interval, skew) cell is one job, so the sweep
    parallelizes and content-caches through the campaign layer exactly
    like the Figure-5 sweeps do.
    """
    from repro.campaign.serialize import cluster_config_to_dict
    from repro.campaign.spec import CampaignSpec

    points = [
        {
            "compute_us": compute,
            "skew_max_us": skew,
            "chunk_us": chunk_us,
            "iterations": iterations,
        }
        for compute in compute_grid
        for skew in skew_grid
    ]
    return CampaignSpec(
        name=name,
        kind="nbc_overlap",
        base_config=cluster_config_to_dict(config),
        points=points,
        repetitions=iterations,
    )


def run_nbc_sweep(
    config: ClusterConfig,
    *,
    compute_grid: Sequence[float] = DEFAULT_COMPUTE_GRID,
    skew_grid: Sequence[float] = DEFAULT_SKEW_GRID,
    iterations: int = DEFAULT_ITERATIONS,
    chunk_us: float = DEFAULT_CHUNK_US,
    jobs: int = 1,
    store=None,
    cache_dir=None,
    name: str = "nbc-overlap",
) -> Tuple[List[OverlapMeasurement], "object"]:
    """Run the overlap sweep through the campaign layer.

    Returns ``(measurements, campaign_result)`` with measurements in
    job (grid) order.  Raises
    :class:`~repro.campaign.executor.CampaignJobError` on any failed
    job.
    """
    from repro.campaign.executor import CampaignJobError, run_campaign

    spec = overlap_sweep_spec(
        config, compute_grid=compute_grid, skew_grid=skew_grid,
        iterations=iterations, chunk_us=chunk_us, name=name,
    )
    result = run_campaign(spec, jobs=jobs, store=store, cache_dir=cache_dir)
    measurements: List[OverlapMeasurement] = []
    for job in result.results:
        if not job.ok:
            raise CampaignJobError(job)
        measurements.append(OverlapMeasurement.from_dict(job.value))
    return measurements, result


def write_nbc_bench(path, measurements: Sequence[OverlapMeasurement],
                    result=None) -> Path:
    """Write the ``BENCH_nbc.json`` artifact.

    One row per sweep cell (compute interval x skew) with the achieved
    overlap percentage, the blocking baseline's overlap (0 by
    construction, recorded explicitly so the acceptance comparison is
    in the artifact itself) and the schedule-cache counters; plus
    campaign totals when the sweep ran through the campaign layer.
    """
    rows = [
        {
            **m.to_dict(),
            #: The baseline this row's overlap_pct must strictly beat.
            "blocking_overlap_pct": 0.0,
        }
        for m in measurements
    ]
    doc = {
        "benchmark": "nbc_overlap",
        "rows": rows,
        "min_overlap_pct": min((r["overlap_pct"] for r in rows), default=0.0),
        "max_overlap_pct": max((r["overlap_pct"] for r in rows), default=0.0),
    }
    if result is not None:
        doc["campaign"] = {
            "jobs": len(result.results),
            "cache_hits": sum(1 for j in result.results if j.cached),
            "simulated": sum(1 for j in result.results if not j.cached),
        }
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path
