"""Barrier critical-path extraction from a causally traced run.

A traced barrier leaves a forest of spans: every host initiation is a
:class:`~repro.sim.tracing.TraceContext` root, every packet a child span
of whatever *caused* it (the initiating token, or the incoming message
that advanced the barrier state machine).  Because receivers adopt the
incoming packet's context as the cause of their next send, the last
rank's ``barrier.exit`` record sits at the end of one connected chain of
records reaching back -- across nodes, wires and switches -- to the
host-queue instant of the rank that started the slowest dependency
chain.  That chain *is* the barrier's critical path: the happens-before
sequence whose segment durations telescope to exactly the end-to-end
barrier latency.

:func:`extract_critical_path` reconstructs it by walking backward from
the final ``barrier.exit`` record: the predecessor of a record is the
previous record in the same span, else the latest record in the parent
span at or before it.  The result attributes every microsecond to a
segment (Host/Send/SDMA/Xmit/Network/Recv/RDMA/HRecv -- the Figure 2
decomposition), a location (trace category: ``host3``, ``nic0``,
``net``) and a hop, renders as a table, and feeds
``Tracer.to_chrome_trace(flow_steps=...)`` so Perfetto draws the causal
arrows between rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.tracing import TraceContext, TraceEvent

__all__ = [
    "CriticalPath",
    "PathStep",
    "extract_critical_path",
    "segment_of",
    "traced_barrier_run",
]

#: Figure-2 segment for each record label the chain can cross.  A
#: record's segment names the work that *ends* at it: the time since the
#: chain's previous record is attributed to this segment.
_SEGMENT_BY_LABEL: Dict[str, str] = {
    "barrier.queue": "Host",
    "barrier.initiate": "Send",
    "barrier.send": "SDMA",
    "barrier.local_deliver": "SDMA",
    "sdma.prepared": "SDMA",
    "sdma.retransmit": "SDMA",
    "sdma.dma": "SDMA",
    "rdma.dma": "RDMA",
    "send.xmit": "Xmit",
    "switch.route": "Network",
    "link.deliver": "Network",
    "recv.barrier_recv": "Recv",
    "recv.accepted": "Recv",
    "barrier.advance": "RDMA",
    "barrier.recorded": "RDMA",
    "barrier.complete": "RDMA",
    "rdma.delivered": "RDMA",
    "barrier.exit": "HRecv",
}


def segment_of(label: str) -> str:
    """The Figure-2 segment a record label belongs to."""
    seg = _SEGMENT_BY_LABEL.get(label)
    if seg is not None:
        return seg
    # Phase-span bookkeeping records (pe.begin, gb.gather.end, ...) are
    # firmware actions.
    return "NIC"


@dataclass(frozen=True)
class PathStep:
    """One record on the critical path.

    ``duration_us`` is the time since the *previous* step -- the cost of
    reaching this record -- so the step durations sum telescopically to
    the chain's end-to-end time.
    """

    event: TraceEvent
    segment: str
    duration_us: float

    @property
    def time(self) -> float:
        """Simulated time of the record."""
        return self.event.time

    @property
    def ctx(self) -> Optional[TraceContext]:
        """The record's trace context."""
        return self.event.payload.get("ctx")

    def to_dict(self) -> dict:
        """JSON-able form (campaign summary schema)."""
        ctx = self.ctx
        return {
            "time_us": self.event.time,
            "category": self.event.category,
            "label": self.event.label,
            "segment": self.segment,
            "duration_us": self.duration_us,
            "ctx": ctx.to_dict() if ctx is not None else None,
        }


@dataclass
class CriticalPath:
    """The extracted chain, oldest record first."""

    steps: List[PathStep] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    @property
    def start_us(self) -> float:
        """Time of the chain's first record."""
        return self.steps[0].time if self.steps else 0.0

    @property
    def end_us(self) -> float:
        """Time of the chain's last record."""
        return self.steps[-1].time if self.steps else 0.0

    @property
    def total_us(self) -> float:
        """End-to-end chain time; equals the sum of step durations."""
        return self.end_us - self.start_us

    @property
    def trace_id(self) -> Optional[int]:
        """The trace tree the chain lives in."""
        for step in self.steps:
            if step.ctx is not None:
                return step.ctx.trace_id
        return None

    @property
    def events(self) -> List[TraceEvent]:
        """The chain's raw records (``Tracer.to_chrome_trace`` flow
        steps)."""
        return [s.event for s in self.steps]

    def by_segment(self) -> Dict[str, float]:
        """Total attributed time per Figure-2 segment."""
        out: Dict[str, float] = {}
        for step in self.steps:
            out[step.segment] = out.get(step.segment, 0.0) + step.duration_us
        return out

    def by_category(self) -> Dict[str, float]:
        """Total attributed time per location (host/NIC/net row)."""
        out: Dict[str, float] = {}
        for step in self.steps:
            out[step.event.category] = (
                out.get(step.event.category, 0.0) + step.duration_us
            )
        return out

    def straggler_chain(self) -> List[str]:
        """The locations the chain visits, in order, deduplicated of
        immediate repeats -- "who waited on whom", host to host."""
        out: List[str] = []
        for step in self.steps:
            cat = step.event.category
            if cat != "net" and (not out or out[-1] != cat):
                out.append(cat)
        return out

    def render_table(self) -> str:
        """Per-hop attribution table (the ``--critical-path`` output)."""
        from repro.analysis.tables import format_table

        rows = []
        for step in self.steps:
            ctx = step.ctx
            rows.append(
                [
                    f"{step.time:.3f}",
                    f"+{step.duration_us:.3f}",
                    step.segment,
                    step.event.category,
                    step.event.label,
                    "" if ctx is None else f"{ctx.trace_id}:{ctx.span_id}",
                    "" if ctx is None or not ctx.hop else str(ctx.hop),
                ]
            )
        table = format_table(
            ["t_us", "dt_us", "segment", "where", "record", "span", "hop"],
            rows,
        )
        seg = self.by_segment()
        seg_line = "  ".join(
            f"{name}={seg[name]:.3f}" for name in sorted(seg, key=seg.get,
                                                         reverse=True)
        )
        chain = " -> ".join(self.straggler_chain())
        return (
            f"{table}\n"
            f"critical path: {self.total_us:.3f} us over {len(self.steps)}"
            f" records (trace {self.trace_id})\n"
            f"per segment: {seg_line}\n"
            f"straggler chain: {chain}"
        )

    def summary(self) -> dict:
        """JSON-able summary (aggregated into ``BENCH_campaign.json``)."""
        return {
            "total_us": self.total_us,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "records": len(self.steps),
            "trace_id": self.trace_id,
            "by_segment": self.by_segment(),
            "by_category": self.by_category(),
            "straggler_chain": self.straggler_chain(),
            "steps": [s.to_dict() for s in self.steps],
        }


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
def _ctx_of(event: TraceEvent) -> Optional[TraceContext]:
    ctx = event.payload.get("ctx")
    return ctx if isinstance(ctx, TraceContext) else None


def extract_critical_path(
    events: Sequence[TraceEvent],
    end_label: str = "barrier.exit",
) -> CriticalPath:
    """Walk the happens-before chain back from the last ``end_label``
    record carrying a context.

    The predecessor of a record is the previous context-carrying record
    in the same span; when the span is exhausted, the latest record in
    the (transitive) parent span at or before the current time.  The
    walk ends at a root span's first record -- the host-queue instant of
    the chain-starting rank.  Raises ``ValueError`` when no suitable end
    record exists (tracing was off, or no barrier ran).
    """
    # Span index: span_id -> context-carrying records in time order.
    # ``events`` is already time-ordered (simulation order).
    by_span: Dict[int, List[Tuple[int, TraceEvent]]] = {}
    parents: Dict[int, Optional[int]] = {}
    for i, ev in enumerate(events):
        ctx = _ctx_of(ev)
        if ctx is None:
            continue
        by_span.setdefault(ctx.span_id, []).append((i, ev))
        # Last writer wins; parent ids never differ within a span.
        parents[ctx.span_id] = ctx.parent_span_id

    end: Optional[TraceEvent] = None
    for ev in reversed(events):
        if ev.label == end_label and _ctx_of(ev) is not None:
            end = ev
            break
    if end is None and end_label != "barrier.complete":
        return extract_critical_path(events, end_label="barrier.complete")
    if end is None:
        raise ValueError(
            f"no {end_label!r} record with a trace context found "
            "(was the run traced?)"
        )

    chain: List[TraceEvent] = [end]
    current = end
    seen: set = {id(end)}
    while True:
        ctx = _ctx_of(current)
        assert ctx is not None
        span = by_span[ctx.span_id]
        pos = next(
            i for i, (_, ev) in enumerate(span) if ev is current
        )
        pred: Optional[TraceEvent] = None
        if pos > 0:
            pred = span[pos - 1][1]
        else:
            # Climb parent spans for the latest record <= current time.
            parent = parents.get(ctx.span_id)
            while parent is not None and pred is None:
                for _, ev in reversed(by_span.get(parent, [])):
                    if ev.time <= current.time and id(ev) not in seen:
                        pred = ev
                        break
                parent = parents.get(parent)
        if pred is None or id(pred) in seen:
            break
        seen.add(id(pred))
        chain.append(pred)
        current = pred

    chain.reverse()
    steps: List[PathStep] = []
    prev_time = chain[0].time
    for ev in chain:
        steps.append(
            PathStep(
                event=ev,
                segment=segment_of(ev.label),
                duration_us=ev.time - prev_time,
            )
        )
        prev_time = ev.time
    return CriticalPath(steps=steps)


# ----------------------------------------------------------------------
# Traced single-barrier runner
# ----------------------------------------------------------------------
def traced_barrier_run(
    num_nodes: int,
    algorithm: str = "pe",
    dimension: Optional[int] = None,
    config: Optional[Any] = None,
    max_events: Optional[int] = 20_000_000,
):
    """Run ONE fault-free barrier with tracing on; return
    ``(cluster, critical_path, end_to_end_us)``.

    ``end_to_end_us`` is the measured barrier latency -- last rank's
    ``barrier.exit`` minus first rank's ``barrier.queue`` -- and with
    zero entry skew it equals ``critical_path.total_us`` exactly (the
    chain starts at a queue record stamped at the common entry instant).
    """
    from repro.cluster.builder import ClusterConfig, build_cluster
    from repro.cluster.runner import default_group, run_on_group
    from repro.core.barrier import barrier as nic_barrier_op

    if config is None:
        config = ClusterConfig(num_nodes=num_nodes)
    config = config.with_(num_nodes=num_nodes, trace=True)
    cluster = build_cluster(config)

    def program(ctx):
        yield from nic_barrier_op(
            ctx.port, ctx.group, ctx.rank,
            algorithm=algorithm, dimension=dimension,
        )
        return ctx.now

    run_on_group(
        cluster, program, group=default_group(cluster), max_events=max_events
    )
    events = cluster.tracer.events
    path = extract_critical_path(events)
    queues = [e.time for e in events if e.label == "barrier.queue"]
    exits = [e.time for e in events if e.label == "barrier.exit"]
    end_to_end = (max(exits) - min(queues)) if queues and exits else path.total_us
    return cluster, path, end_to_end
