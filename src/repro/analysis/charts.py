"""Plain-text charts for terminals and reports.

The benches and the report CLI render the paper's figures as monospace
line/bar charts (no plotting dependency is available offline, and CI logs
are text anyway).  Not a plotting library -- just the two chart shapes the
experiments need.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Glyphs assigned to series, in order.
SERIES_GLYPHS = "ox+*#@%&"


def ascii_line_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: Optional[str] = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render ``{name: [(x, y), ...]}`` as a scatter/line chart.

    Points are plotted on a character grid with linear axes; each series
    gets a glyph from :data:`SERIES_GLYPHS` and a legend line.
    """
    if not series or all(not pts for pts in series.values()):
        raise ValueError("nothing to plot")
    all_pts = [p for pts in series.values() for p in pts]
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    # Avoid zero ranges.
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0
    # Pad the y range slightly so extreme points aren't on the frame.
    pad = 0.05 * (y_max - y_min)
    y_min -= pad
    y_max += pad

    grid = [[" "] * width for _ in range(height)]

    def plot(x: float, y: float, glyph: str) -> None:
        col = round((x - x_min) / (x_max - x_min) * (width - 1))
        row = round((y - y_min) / (y_max - y_min) * (height - 1))
        grid[height - 1 - row][col] = glyph

    legend: List[str] = []
    for i, (name, pts) in enumerate(series.items()):
        glyph = SERIES_GLYPHS[i % len(SERIES_GLYPHS)]
        legend.append(f"{glyph} = {name}")
        for x, y in pts:
            plot(x, y, glyph)

    lines: List[str] = []
    if title:
        lines.append(title)
    y_top = f"{y_max:.6g}"
    y_bot = f"{y_min:.6g}"
    label_w = max(len(y_top), len(y_bot))
    for r, row in enumerate(grid):
        if r == 0:
            prefix = y_top.rjust(label_w)
        elif r == height - 1:
            prefix = y_bot.rjust(label_w)
        else:
            prefix = " " * label_w
        lines.append(f"{prefix} |{''.join(row)}|")
    x_left = f"{x_min:.6g}"
    x_right = f"{x_max:.6g}"
    axis = " " * label_w + " +" + "-" * width + "+"
    lines.append(axis)
    gap = max(1, width - len(x_left) - len(x_right))
    lines.append(" " * (label_w + 2) + x_left + " " * gap + x_right)
    if x_label or y_label:
        lines.append(f"  x: {x_label}   y: {y_label}".rstrip())
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)


def ascii_bar_chart(
    values: Dict[str, float],
    width: int = 50,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Render labelled horizontal bars, scaled to the maximum value."""
    if not values:
        raise ValueError("nothing to plot")
    if any(v < 0 for v in values.values()):
        raise ValueError("bar chart values must be >= 0")
    peak = max(values.values()) or 1.0
    label_w = max(len(k) for k in values)
    lines: List[str] = []
    if title:
        lines.append(title)
    for name, value in values.items():
        bar = "#" * max(1 if value > 0 else 0, round(value / peak * width))
        lines.append(f"{name.rjust(label_w)} | {bar} {value:.6g}{unit}")
    return "\n".join(lines)
