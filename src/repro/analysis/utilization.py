"""Host-processor utilization during barrier phases.

Section 1: "Another feature of our NIC-based barrier implementation is
better utilization of the host processor.  Because the barrier algorithm
is performed at the NIC, the processor is free to perform computation
while polling for the barrier to complete."

This module measures exactly that: a workload that interleaves
computation with barriers, reporting how much *useful* host compute each
configuration achieves per unit time.  Three configurations:

* ``host``  -- host-based barrier (the host runs the algorithm; no overlap);
* ``nic``   -- blocking NIC-based barrier (host idles while the NIC works);
* ``fuzzy`` -- fuzzy NIC-based barrier (host computes while the NIC works).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.cluster.runner import run_on_group
from repro.core.barrier import barrier as nic_barrier
from repro.core.barrier import fuzzy_barrier
from repro.core.host_barrier import host_barrier
from repro.sim.primitives import Timeout


@dataclass(frozen=True)
class UtilizationResult:
    """Outcome of one utilization run."""

    mode: str
    total_time_us: float
    useful_compute_us: float
    iterations: int

    @property
    def compute_fraction(self) -> float:
        """Fraction of wall time spent on application compute (mean per
        rank)."""
        return self.useful_compute_us / self.total_time_us

    @property
    def time_per_iteration_us(self) -> float:
        """Mean wall time per compute+barrier iteration."""
        return self.total_time_us / self.iterations


def measure_utilization(
    mode: str,
    *,
    num_nodes: int = 8,
    iterations: int = 10,
    work_per_iteration_us: float = 80.0,
    chunk_us: float = 5.0,
    config: Optional[ClusterConfig] = None,
) -> UtilizationResult:
    """Run the compute+barrier workload in the given ``mode``."""
    if mode not in ("host", "nic", "fuzzy"):
        raise ValueError(f"unknown mode {mode!r}")
    cluster = build_cluster(config or ClusterConfig(num_nodes=num_nodes))
    computed: Dict[int, float] = {}

    def program(ctx):
        done = 0.0
        for _ in range(iterations):
            if mode == "fuzzy":
                handle = yield from fuzzy_barrier(ctx.port, ctx.group, ctx.rank)
                remaining = work_per_iteration_us
                while remaining > 0:
                    step = min(chunk_us, remaining)
                    yield from ctx.node.compute(step)
                    done += step
                    remaining -= step
                    yield from handle.test()
                yield from handle.wait()
            else:
                yield from ctx.node.compute(work_per_iteration_us)
                done += work_per_iteration_us
                if mode == "nic":
                    yield from nic_barrier(ctx.port, ctx.group, ctx.rank)
                else:
                    yield from host_barrier(ctx.port, ctx.group, ctx.rank)
        computed[ctx.rank] = done

    run_on_group(cluster, program, max_events=20_000_000)
    total = cluster.sim.now
    mean_compute = sum(computed.values()) / len(computed)
    return UtilizationResult(
        mode=mode,
        total_time_us=total,
        useful_compute_us=mean_compute,
        iterations=iterations,
    )


def utilization_comparison(
    *,
    num_nodes: int = 8,
    iterations: int = 10,
    work_per_iteration_us: float = 80.0,
    config: Optional[ClusterConfig] = None,
) -> Dict[str, UtilizationResult]:
    """All three modes on identical workloads."""
    return {
        mode: measure_utilization(
            mode,
            num_nodes=num_nodes,
            iterations=iterations,
            work_per_iteration_us=work_per_iteration_us,
            config=config,
        )
        for mode in ("host", "nic", "fuzzy")
    }
