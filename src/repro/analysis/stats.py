"""Latency statistics helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a latency sample (microseconds)."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p95: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.2f}us std={self.std:.2f} "
            f"min={self.minimum:.2f} p50={self.p50:.2f} "
            f"p95={self.p95:.2f} max={self.maximum:.2f}"
        )


def summarize(samples: Sequence[float]) -> LatencyStats:
    """Compute summary statistics for a latency sample."""
    if not len(samples):
        raise ValueError("empty sample")
    arr = np.asarray(samples, dtype=float)
    return LatencyStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        maximum=float(arr.max()),
    )


def improvement_factor(host_latency: float, nic_latency: float) -> float:
    """Equation 3 applied to two measured latencies."""
    if nic_latency <= 0:
        raise ValueError("NIC latency must be positive")
    return host_latency / nic_latency
