"""Reliability benchmark: time-to-detect and time-to-recover.

The fail-stop stack (NIC heartbeat failure detector -> typed
:class:`~repro.gm.events.PeerFailure` aborts -> ``comm.shrink()``) turns
a dead node from an indefinite hang into a bounded recovery.  This
benchmark measures how bounded: for a sweep of (algorithm, cluster
size) scenarios it kills one node mid-barrier and records, per
surviving NIC,

* **time-to-detect** -- the simulated interval between the crash
  instant and the survivor's detector declaring the victim suspect
  (bounded by ``suspect_after`` plus one heartbeat of phase), and
* **time-to-recover** -- the interval between the crash instant and the
  survivor completing its first *post-shrink* barrier on the agreed
  smaller group (detection + abort + shrink consensus + one barrier).

All quantities are simulated time, so the artifact is bit-deterministic
for a given seed: the CI sentinel gate
(``python -m repro.analysis.sentinel --strict --baseline
BENCH_reliability.json``) flags any drift of the percentiles at all.

CLI::

    python -m repro.analysis.reliability_bench --out BENCH_reliability.json
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.cluster.runner import run_on_group
from repro.faults.inject import CRASH_SUSPECT_AFTER_US
from repro.faults.plan import FaultPlan, NodeCrash
from repro.faults.soak import _combo_seed
from repro.gm.events import PeerFailure
from repro.nic.nic import NicParams

#: (label, algorithm) scenarios the bench sweeps -- one host algorithm,
#: one NIC engine and the non-blocking schedule engine, to cover all
#: three abort paths.
BENCH_ALGORITHMS = (
    ("host-pe", "pe"),
    ("nic-dissemination", "dissemination"),
    ("nbc-ibarrier", "nbc"),
)

BENCH_SIZES = (4, 8, 16)

#: Mid-barrier crash instant (matches the crash soak's "mid" phase).
BENCH_CRASH_AT_US = 90.0


def run_reliability_scenario(
    *,
    seed: int,
    label: str,
    algorithm: str,
    num_nodes: int,
    crash_at_us: float = BENCH_CRASH_AT_US,
    repetitions: int = 3,
    max_events: int = 5_000_000,
) -> dict:
    """Kill one node mid-barrier; measure detection and recovery.

    Returns ``{"detect_us": [...], "recover_us": [...],
    "shrunken_size": int, "victim": int}`` with one detect sample per
    surviving NIC and one recover sample per surviving rank.
    """
    from repro.mpi.communicator import Communicator
    from repro.sim.primitives import Timeout

    victim = seed % num_nodes
    cluster = build_cluster(
        ClusterConfig(
            num_nodes=num_nodes,
            seed=seed,
            nic_params=NicParams(
                retransmit_timeout_us=300.0,
                barrier_retransmit_timeout_us=200.0,
            ),
            fault_plan=FaultPlan(
                seed=seed,
                crashes=[NodeCrash(node=victim, at_us=crash_at_us)],
            ),
        )
    )
    recovered_at: Dict[int, float] = {}
    final_sizes: Dict[int, int] = {}

    def one_barrier(ctx, comm):
        if algorithm == "nbc":
            request = yield from comm.ibarrier()
            for _ in range(4):
                yield from ctx.node.compute(10.0)
                yield from request.test()
            yield from request.wait()
        else:
            old = comm.params
            comm.params = old.with_(
                nic_collectives=label.startswith("nic-")
            )
            try:
                yield from comm.barrier(algorithm=algorithm)
            finally:
                comm.params = old

    def program(ctx):
        yield Timeout(float((ctx.rank * 7) % num_nodes))
        comm = Communicator(ctx.port, ctx.group, ctx.rank)
        for _ in range(repetitions):
            try:
                yield from one_barrier(ctx, comm)
            except PeerFailure as failure:
                ctx.port.acknowledge_failures(set(failure.suspects))
                break
        yield from comm.shrink()
        yield from one_barrier(ctx, comm)
        recovered_at[ctx.rank] = ctx.now
        final_sizes[ctx.rank] = len(comm.group)

    run_on_group(cluster, program, max_events=max_events)

    detect_us: List[float] = []
    for node in cluster.nodes:
        if node.node_id == victim:
            continue
        detector = node.nic.detector
        if detector is not None and victim in detector.suspected_at:
            detect_us.append(detector.suspected_at[victim] - crash_at_us)
    recover_us = [
        at - crash_at_us for rank, at in sorted(recovered_at.items())
    ]
    sizes = set(final_sizes.values())
    assert len(sizes) == 1, f"survivors disagree on group size: {sizes}"
    return {
        "detect_us": detect_us,
        "recover_us": recover_us,
        "shrunken_size": sizes.pop(),
        "victim": victim,
    }


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def run_reliability_bench(seed: int = 42) -> dict:
    """Sweep every bench scenario; return the flat JSON-able document.

    Every key ending in ``_us`` is lower-is-better for the sentinel.
    """
    detect_all: List[float] = []
    recover_all: List[float] = []
    scenarios = 0
    index = 0
    for label, algorithm in BENCH_ALGORITHMS:
        for num_nodes in BENCH_SIZES:
            sample = run_reliability_scenario(
                seed=_combo_seed(seed, index),
                label=label,
                algorithm=algorithm,
                num_nodes=num_nodes,
            )
            assert sample["shrunken_size"] == num_nodes - 1
            detect_all.extend(sample["detect_us"])
            recover_all.extend(sample["recover_us"])
            scenarios += 1
            index += 1
    return {
        "benchmark": "reliability",
        "seed": seed,
        "scenarios": scenarios,
        "samples": len(detect_all),
        "suspect_after_us": CRASH_SUSPECT_AFTER_US,
        "detect_p50_us": round(percentile(detect_all, 0.50), 3),
        "detect_p90_us": round(percentile(detect_all, 0.90), 3),
        "detect_max_us": round(max(detect_all), 3),
        "recover_p50_us": round(percentile(recover_all, 0.50), 3),
        "recover_p90_us": round(percentile(recover_all, 0.90), 3),
        "recover_max_us": round(max(recover_all), 3),
    }


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", type=Path, default=None, metavar="FILE",
                        help="write the flat JSON artifact here "
                             "(e.g. BENCH_reliability.json)")
    args = parser.parse_args(argv)
    doc = run_reliability_bench(args.seed)
    for key, value in doc.items():
        print(f"{key:>18}: {value}")
    if args.out is not None:
        args.out.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
