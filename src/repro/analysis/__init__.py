"""Performance model, calibration and experiment harnesses."""

from repro.analysis.calibration import (
    LANAI_4_3_SYSTEM,
    LANAI_7_2_SYSTEM,
    SystemCalibration,
)
from repro.analysis.experiments import (
    BarrierMeasurement,
    best_gb_dimension,
    measure_barrier,
    measure_barrier_sweep,
)
from repro.analysis.model import BarrierModel, ModelParams
from repro.analysis.stats import LatencyStats, summarize
from repro.analysis.tables import format_table

__all__ = [
    "BarrierMeasurement",
    "BarrierModel",
    "LANAI_4_3_SYSTEM",
    "LANAI_7_2_SYSTEM",
    "LatencyStats",
    "ModelParams",
    "SystemCalibration",
    "best_gb_dimension",
    "format_table",
    "measure_barrier",
    "measure_barrier_sweep",
    "summarize",
]
