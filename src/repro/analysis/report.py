"""Regenerate the paper's evaluation as a report.

``python -m repro.analysis.report [--quick] [--out DIR]`` reruns the
Figure 5 sweeps on both simulated testbeds, prints the
paper-vs-measured tables, and (with ``--out``) writes ``figure5.csv`` and
``report.md`` so results can be diffed across revisions.

The sweeps are submitted through the :mod:`repro.campaign` subsystem:
``--jobs N`` fans the independent measurements out over N worker
processes (bit-identical to the serial run), ``--cache-dir DIR`` reuses
content-addressed cached results (an unchanged sweep re-simulates
nothing), ``--json OUT`` additionally writes the paper-vs-measured
tables as machine-readable JSON, and every sweep run leaves a
consolidated ``BENCH_campaign.json`` trajectory (in ``--out`` when
given, else the working directory).  See ``docs/campaigns.md``.

``python -m repro.analysis.report --observe N [--trace-out FILE]``
instead runs one instrumented N-node dissemination barrier with the
metrics registry live and prints the per-component metrics table (NIC
busy time, link utilization, resend counters); ``--trace-out`` also
writes the run as Chrome trace_event JSON for ``chrome://tracing`` /
Perfetto (see ``docs/observability.md``).

``python -m repro.analysis.report --faults SEED`` runs the chaos soak:
every barrier algorithm (host and NIC, both reliability designs) under
a fault plan derived from SEED -- seeded packet loss and corruption,
a link flap, a switch port stall, a NIC pause and an ACK-loss burst --
and prints the recovery table (injected losses, retransmits, duplicate
suppressions, alarms).  Same seed, same table (see
``docs/reliability.md``).

``python -m repro.analysis.report --crashes SEED`` runs the crash soak
instead: every barrier algorithm under a seeded fail-stop *node crash*
at every phase and cluster size, checking that survivors abort with
typed failures, shrink to the agreed smaller group and resume (see the
fail-stop section of ``docs/reliability.md``).
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.calibration import (
    LANAI_4_3_SYSTEM,
    LANAI_7_2_SYSTEM,
    SystemCalibration,
)
from repro.analysis.charts import ascii_line_chart
from repro.analysis.experiments import BarrierMeasurement
from repro.analysis.figure5 import (
    BENCH_REPS,
    BENCH_WARMUP,
    QUICK_REPS,
    QUICK_WARMUP,
    VARIANTS,
    run_figure5,
)
from repro.analysis.tables import format_table


def generate_figure5(
    system: SystemCalibration,
    repetitions: int,
    warmup: int,
    jobs: int = 1,
    store=None,
    cache_dir=None,
) -> Dict[str, Dict[int, BarrierMeasurement]]:
    """Run the four-variant sweep over the system's published sizes."""
    sweep, _ = run_figure5(
        system, repetitions=repetitions, warmup=warmup,
        jobs=jobs, store=store, cache_dir=cache_dir,
    )
    return sweep


def figure5_rows(system: SystemCalibration, sweep) -> List[list]:
    """Flatten one system's sweep into CSV/table rows."""
    rows = []
    for n in system.sizes:
        row: List = [system.lanai_model.name, n]
        for variant in VARIANTS:
            m = sweep[variant][n]
            row.append(round(m.mean_latency_us, 2))
        row.append(
            round(
                sweep["host-pe"][n].mean_latency_us
                / sweep["nic-pe"][n].mean_latency_us,
                3,
            )
        )
        row.append(
            round(
                sweep["host-gb"][n].mean_latency_us
                / sweep["nic-gb"][n].mean_latency_us,
                3,
            )
        )
        anchor = system.anchor(n, "nic-pe")
        row.append(anchor.value if anchor else "")
        rows.append(row)
    return rows


HEADERS = [
    "card", "N", "host-pe", "nic-pe", "host-gb", "nic-gb",
    "pe-factor", "gb-factor", "paper-nic-pe",
]


# ----------------------------------------------------------------------
# Observability: metrics table + instrumented runs
# ----------------------------------------------------------------------
def metrics_table(registry, skip_zero: bool = True) -> str:
    """Render a :class:`~repro.sim.metrics.MetricsRegistry` snapshot.

    Uses the same table formatter as the Figure-5 output so benchmark
    scripts can append a metrics section to their reports.
    """
    rows: List[list] = []
    for name, value in registry.rows(skip_zero=skip_zero):
        if isinstance(value, float) and not value.is_integer():
            rows.append([name, round(value, 3)])
        else:
            rows.append([name, int(value)])
    return format_table(["metric", "value"], rows)


def run_observed_barrier(
    num_nodes: int = 16,
    algorithm: str = "dissemination",
    repetitions: int = 4,
    trace_path: Optional[Path] = None,
):
    """Run consecutive NIC barriers with metrics + tracing live.

    Returns the finished cluster; read ``cluster.metrics`` for the
    registry and ``cluster.tracer`` for the event timeline.  With
    ``trace_path`` the timeline is also written as Chrome trace_event
    JSON.
    """
    from repro.cluster.builder import ClusterConfig, build_cluster
    from repro.cluster.runner import default_group, run_on_group
    from repro.core.barrier import barrier as nic_barrier_op

    config = ClusterConfig(num_nodes=num_nodes, metrics=True, trace=True)
    cluster = build_cluster(config)

    def program(ctx):
        for _ in range(repetitions):
            yield from nic_barrier_op(
                ctx.port, ctx.group, ctx.rank, algorithm=algorithm
            )
        return ctx.now

    run_on_group(
        cluster, program, group=default_group(cluster), max_events=20_000_000
    )
    if trace_path is not None:
        cluster.tracer.write_chrome_trace(trace_path)
    return cluster


def render_report(all_rows: List[list]) -> str:
    """Render the markdown report (table + per-card charts)."""
    out = io.StringIO()
    out.write("# Regenerated evaluation (Figure 5)\n\n")
    out.write("Latencies in microseconds; GB at the best swept tree ")
    out.write("dimension; factor = host / NIC (Equation 3).\n\n```\n")
    out.write(format_table(HEADERS, all_rows))
    out.write("\n```\n")
    # One latency chart per card, like the paper's panels.
    for card in dict.fromkeys(row[0] for row in all_rows):
        series: Dict[str, list] = {v: [] for v in VARIANTS}
        for row in all_rows:
            if row[0] != card:
                continue
            n = row[1]
            for i, variant in enumerate(VARIANTS):
                series[variant].append((n, row[2 + i]))
        out.write("\n```\n")
        out.write(
            ascii_line_chart(
                series,
                width=56,
                height=14,
                title=f"{card}: barrier latency vs nodes",
                x_label="nodes",
                y_label="us",
            )
        )
        out.write("\n```\n")
    out.write("\nPaper anchors: NIC-PE(16, LANai 4.3) = 102.14 us ")
    out.write("(x1.78), NIC-GB(16) = 152.27 us (x1.46), ")
    out.write("NIC-PE(8, LANai 7.2) = 49.25 us (x1.83).\n")
    return out.getvalue()


def write_outputs(out_dir: Path, all_rows: List[list]) -> None:
    """Write figure5.csv and report.md into ``out_dir``."""
    out_dir.mkdir(parents=True, exist_ok=True)
    with open(out_dir / "figure5.csv", "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(HEADERS)
        writer.writerows(all_rows)
    (out_dir / "report.md").write_text(render_report(all_rows))


def tables_json(
    systems: List[SystemCalibration],
    sweeps: Dict[str, Dict[str, Dict[int, BarrierMeasurement]]],
) -> dict:
    """The paper-vs-measured tables as a JSON-able document.

    Measurements reuse the campaign ResultStore payload schema
    (:meth:`BarrierMeasurement.to_dict`), so the rows here and the
    cached/BENCH artifacts describe results in the same shape.
    """
    from repro.campaign.serialize import CODE_VERSION

    doc: dict = {"code_version": CODE_VERSION, "systems": []}
    for system in systems:
        sweep = sweeps[system.lanai_model.name]
        rows = []
        for n in system.sizes:
            entry: dict = {"num_nodes": n, "measured": {}, "paper": {}}
            for variant in VARIANTS:
                m = sweep[variant].get(n)
                if m is not None:
                    entry["measured"][variant] = m.to_dict()
            entry["measured"]["factor-pe"] = (
                sweep["host-pe"][n].mean_latency_us
                / sweep["nic-pe"][n].mean_latency_us
            )
            entry["measured"]["factor-gb"] = (
                sweep["host-gb"][n].mean_latency_us
                / sweep["nic-gb"][n].mean_latency_us
            )
            for variant in VARIANTS + ("factor-pe", "factor-gb"):
                anchor = system.anchor(n, variant)
                if anchor is not None:
                    entry["paper"][variant] = {
                        "description": anchor.description,
                        "value": anchor.value,
                        "kind": anchor.kind,
                    }
            rows.append(entry)
        doc["systems"].append(
            {
                "card": system.lanai_model.name,
                "name": system.name,
                "rows": rows,
            }
        )
    return doc


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer repetitions (3 instead of 6)")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for figure5.csv and report.md")
    parser.add_argument("--system", choices=["4.3", "7.2", "both"],
                        default="both")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="campaign worker processes (1 = inline serial; "
                             "parallel results are bit-identical)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="content-addressed result cache directory; "
                             "unchanged configs are never re-simulated")
    parser.add_argument("--json", type=Path, default=None, metavar="OUT",
                        help="also write the paper-vs-measured tables as "
                             "machine-readable JSON to this file")
    obs = parser.add_argument_group(
        "observability runs",
        "one-shot instrumented runs (docs/observability.md); pick at most "
        "one mode: --observe, --critical-path, --telemetry or --faults")
    obs.add_argument("--observe", type=int, metavar="N", default=None,
                     help="run one instrumented N-node dissemination "
                          "barrier and print the metrics table")
    obs.add_argument("--critical-path", type=int, metavar="N",
                     default=None,
                     help="run one traced N-node barrier and print its "
                          "critical path: per-hop attribution table and "
                          "per-segment totals")
    obs.add_argument("--telemetry", type=int, metavar="N", default=None,
                     help="run one sampled N-node barrier and print the "
                          "per-round congestion hotspot table "
                          "(repro.analysis.hotspots)")
    obs.add_argument("--sample-us", type=float, default=2.0, metavar="U",
                     help="with --telemetry: sampling period in simulated "
                          "microseconds (default 2.0)")
    obs.add_argument("--telemetry-out", type=Path, default=None,
                     metavar="FILE",
                     help="with --telemetry: write every sampled series as "
                          "JSONL to this file")
    obs.add_argument("--algo", choices=["pe", "dissemination", "gb"],
                     default=None,
                     help="with --critical-path or --telemetry: barrier "
                          "algorithm (defaults: pe for --critical-path, "
                          "dissemination for --telemetry)")
    obs.add_argument("--trace-out", type=Path, default=None,
                     help="with --observe, --critical-path or --telemetry: "
                          "write the run as Chrome trace_event JSON "
                          "(--critical-path adds flow arrows along the "
                          "chain; --telemetry adds counter tracks)")
    obs.add_argument("--faults", type=int, metavar="SEED", default=None,
                     help="run the chaos soak (every barrier algorithm "
                          "under seeded fault injection) and print the "
                          "recovery table")
    obs.add_argument("--crashes", type=int, metavar="SEED", default=None,
                     help="run the crash soak (every barrier algorithm "
                          "under a seeded fail-stop node crash at every "
                          "phase and size) and print the shrink-and-"
                          "resume table")
    parser.add_argument("--nodes", type=int, default=8,
                        help="with --faults: cluster size (default 8)")
    parser.add_argument("--reps", type=int, default=3,
                        help="with --faults: barriers per combination "
                             "(default 3)")
    args = parser.parse_args(argv)

    # -- observability flag validation (one mode, consistent companions) --
    modes = {
        "--observe": args.observe,
        "--critical-path": args.critical_path,
        "--telemetry": args.telemetry,
        "--faults": args.faults,
        "--crashes": args.crashes,
    }
    active = [flag for flag, value in modes.items() if value is not None]
    if len(active) > 1:
        parser.error(f"{' and '.join(active)} are mutually exclusive -- "
                     "pick one observability mode per run")
    if args.trace_out is not None and not (
        args.observe is not None
        or args.critical_path is not None
        or args.telemetry is not None
    ):
        parser.error("--trace-out needs a run to trace: combine it with "
                     "--observe, --critical-path or --telemetry")
    if args.telemetry_out is not None and args.telemetry is None:
        parser.error("--telemetry-out requires --telemetry N (there are no "
                     "sampled series without a telemetry run)")
    if args.algo is not None and (
        args.critical_path is None and args.telemetry is None
    ):
        parser.error("--algo only applies to --critical-path or --telemetry "
                     "runs")

    if args.faults is not None:
        from repro.faults import run_chaos_soak

        result = run_chaos_soak(
            args.faults, num_nodes=args.nodes, repetitions=args.reps,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
        )
        print(f"chaos soak: seed={result.seed} nodes={result.num_nodes} "
              f"reps={result.repetitions}")
        print(result.table())
        print(f"total injected={result.total_injected} "
              f"retransmits={result.total_retransmits}; all barriers safe")
        return 0

    if args.crashes is not None:
        from repro.faults import run_crash_soak

        result = run_crash_soak(args.crashes)
        print(f"crash soak: seed={result.seed} combos={len(result.rows)}")
        print(result.table())
        print("every combination terminated; survivors agreed on the "
              "post-shrink group")
        return 0

    if args.critical_path is not None:
        from repro.analysis.critical_path import traced_barrier_run

        cluster, path, end_to_end = traced_barrier_run(
            args.critical_path, algorithm=args.algo or "pe"
        )
        print(path.render_table())
        print(f"end-to-end barrier latency: {end_to_end:.3f} us "
              f"(path covers {path.total_us / end_to_end:.1%})")
        if args.trace_out is not None:
            cluster.tracer.write_chrome_trace(
                args.trace_out, flow_steps=path.events
            )
            print(f"wrote {args.trace_out}", file=sys.stderr)
        return 0

    if args.telemetry is not None:
        from repro.analysis.hotspots import run_telemetry_barrier
        from repro.telemetry import write_telemetry_jsonl

        cluster, report = run_telemetry_barrier(
            args.telemetry,
            algorithm=args.algo or "dissemination",
            sample_us=args.sample_us,
        )
        tel = cluster.telemetry
        print(report.render_table())
        print(f"telemetry: {len(tel.series)} series, "
              f"{tel.samples_taken} samples at {tel.sample_us:g} us")
        if args.telemetry_out is not None:
            write_telemetry_jsonl(args.telemetry_out, tel.series.values())
            print(f"wrote {args.telemetry_out}", file=sys.stderr)
        if args.trace_out is not None:
            cluster.tracer.write_chrome_trace(
                args.trace_out, counter_series=list(tel.series.values())
            )
            print(f"wrote {args.trace_out}", file=sys.stderr)
        return 0

    if args.observe is not None:
        cluster = run_observed_barrier(
            num_nodes=args.observe, trace_path=args.trace_out
        )
        print(metrics_table(cluster.metrics))
        if args.trace_out is not None:
            print(f"wrote {args.trace_out}", file=sys.stderr)
        return 0

    from repro.analysis.figure5 import assemble_sweep, figure5_spec
    from repro.campaign import run_campaign, write_bench

    reps = QUICK_REPS if args.quick else BENCH_REPS
    warmup = QUICK_WARMUP if args.quick else BENCH_WARMUP
    systems = {
        "4.3": [LANAI_4_3_SYSTEM],
        "7.2": [LANAI_7_2_SYSTEM],
        "both": [LANAI_4_3_SYSTEM, LANAI_7_2_SYSTEM],
    }[args.system]

    # One campaign for every selected testbed: the jobs are independent,
    # so both systems' sweeps share the worker pool and the cache.
    campaign_jobs = []
    for system in systems:
        print(f"sweeping {system.name} ...", file=sys.stderr)
        campaign_jobs.extend(
            figure5_spec(system, repetitions=reps, warmup=warmup).compile()
        )
    campaign = run_campaign(
        campaign_jobs, jobs=args.jobs, cache_dir=args.cache_dir,
        name="figure5",
    ).raise_on_failure()
    print(
        f"campaign: {len(campaign.results)} jobs, "
        f"{campaign.cache_hits} cache hits, "
        f"{campaign.simulated} simulated, {campaign.failed} failed",
        file=sys.stderr,
    )

    all_rows: List[list] = []
    sweeps: Dict[str, Dict[str, Dict[int, BarrierMeasurement]]] = {}
    for system in systems:
        sweep = assemble_sweep(campaign, lanai_name=system.lanai_model.name)
        sweeps[system.lanai_model.name] = sweep
        all_rows.extend(figure5_rows(system, sweep))

    print(render_report(all_rows))
    bench_dir = args.out if args.out is not None else Path(".")
    bench_dir.mkdir(parents=True, exist_ok=True)
    bench_path = write_bench(bench_dir, campaign)
    print(f"wrote {bench_path}", file=sys.stderr)
    if args.out is not None:
        write_outputs(args.out, all_rows)
        print(f"wrote {args.out}/figure5.csv and {args.out}/report.md",
              file=sys.stderr)
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps(tables_json(systems, sweeps), indent=1, sort_keys=True)
        )
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
