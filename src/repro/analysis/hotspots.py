"""Congestion hotspot attribution: join telemetry against barrier rounds.

The critical-path analyzer (PR 4) answers *which causal chain* bounded
one barrier; this module answers the complementary capacity question:
*which component was most contended while each round ran*.  It joins
the sampled time series from :mod:`repro.telemetry` against the round
spans recoverable from an ordinary traced barrier run:

- round ``k`` opens when the **first** NIC emits its ``k``-th
  ``barrier.send`` for that barrier sequence number, and closes when
  the first NIC emits its ``k+1``-th (the last round closes at the
  final ``barrier.complete``);
- the round's **straggler** is the NIC whose ``k``-th send came last —
  the rank the dissemination/PE exchange waited on;
- within each span, every telemetry component is scored by its worst
  contention signal (utilization near 1, queue depth, pause state) and
  the top scorer is the round's hotspot.

The contention score per component is ``max(util, queue/(queue+1),
paused)`` over the window means: a saturated link scores ~1 from
utilization, a deep queue asymptotically approaches 1, a paused port
scores 1 outright — so qualitatively different congestion signals rank
on one scale.  Queue depth breaks ties (a link at 100% with a backlog
beats a link at 100% that is merely streaming).

Entry points: :func:`barrier_round_spans`, :func:`attribute_hotspots`,
and :func:`run_telemetry_barrier` (build + run + analyze, the engine
behind ``report.py --telemetry N``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.telemetry import Telemetry, TimeSeries

__all__ = [
    "RoundSpan",
    "RoundHotspot",
    "HotspotReport",
    "barrier_round_spans",
    "attribute_hotspots",
    "run_telemetry_barrier",
]


@dataclass(frozen=True)
class RoundSpan:
    """One barrier round's time window."""

    round_index: int
    t0: float
    t1: float
    #: Trace category (``nic3``) whose send opened the round.
    leader: str
    #: Trace category whose send came last — who the round waited on.
    straggler: str

    @property
    def duration_us(self) -> float:
        """Span length in simulated microseconds."""
        return self.t1 - self.t0


@dataclass
class RoundHotspot:
    """The most-contended component during one round."""

    span: RoundSpan
    component: str
    score: float
    #: signal name -> window mean behind the score (util/queue/paused).
    evidence: Dict[str, float] = field(default_factory=dict)


@dataclass
class HotspotReport:
    """Per-round hotspots plus a duration-weighted overall ranking."""

    rounds: List[RoundHotspot]
    #: component -> sum(score * round duration), descending.
    ranking: List[Tuple[str, float]]
    barrier_seq: Optional[int] = None

    @property
    def top_component(self) -> Optional[str]:
        """Highest duration-weighted scorer (None without rounds)."""
        return self.ranking[0][0] if self.ranking else None

    def render_table(self) -> str:
        """Human-readable per-round table plus the overall ranking."""
        rows = []
        for rh in self.rounds:
            ev = " ".join(
                f"{k}={v:.2f}" for k, v in sorted(rh.evidence.items()) if v > 0
            ) or "-"
            rows.append(
                [
                    str(rh.span.round_index),
                    f"{rh.span.t0:.3f}",
                    f"{rh.span.duration_us:.3f}",
                    rh.span.straggler,
                    rh.component,
                    f"{rh.score:.3f}",
                    ev,
                ]
            )
        table = format_table(
            ["round", "t0_us", "dt_us", "straggler", "hotspot", "score", "evidence"],
            rows,
        )
        if self.ranking:
            top = ", ".join(f"{c} ({w:.1f})" for c, w in self.ranking[:3])
            table += f"\noverall hotspots (score x us): {top}\n"
        return table

    def summary(self) -> Dict[str, object]:
        """JSON-able form for bench artifacts."""
        return {
            "barrier_seq": self.barrier_seq,
            "top_component": self.top_component,
            "ranking": [
                {"component": c, "weight_us": w} for c, w in self.ranking
            ],
            "rounds": [
                {
                    "round": rh.span.round_index,
                    "t0_us": rh.span.t0,
                    "t1_us": rh.span.t1,
                    "leader": rh.span.leader,
                    "straggler": rh.span.straggler,
                    "hotspot": rh.component,
                    "score": rh.score,
                    "evidence": dict(rh.evidence),
                }
                for rh in self.rounds
            ],
        }


def barrier_round_spans(events, seq: Optional[int] = None) -> List[RoundSpan]:
    """Recover round windows from a traced run's ``barrier.send`` records.

    ``events`` is a tracer's record list (time-ordered).  ``seq``
    selects the barrier instance; default is the last sequence number
    seen (the measured iteration in a warmup+measure run).  Returns an
    empty list when the trace has no sends for that sequence.
    """
    sends: Dict[str, List[float]] = {}
    complete_at: float = 0.0
    last_seq: Optional[int] = None
    for ev in events:
        if ev.label == "barrier.send":
            last_seq = ev.payload.get("seq", last_seq)
    want = seq if seq is not None else last_seq
    if want is None:
        return []
    for ev in events:
        if ev.payload.get("seq") != want:
            continue
        if ev.label == "barrier.send":
            sends.setdefault(ev.category, []).append(ev.time)
        elif ev.label in ("barrier.complete", "barrier.exit"):
            complete_at = max(complete_at, ev.time)
    if not sends:
        return []
    num_rounds = max(len(times) for times in sends.values())
    spans: List[RoundSpan] = []
    prev_t1 = 0.0
    for k in range(num_rounds):
        kth = [(times[k], cat) for cat, times in sends.items() if len(times) > k]
        t0, leader = min(kth)
        _, straggler = max(kth)
        if k + 1 < num_rounds:
            nxt = [times[k + 1] for times in sends.values() if len(times) > k + 1]
            t1 = min(nxt)
        else:
            t1 = max(complete_at, t0)
        t0 = max(t0, prev_t1)  # clamp monotone against ragged send counts
        t1 = max(t1, t0)
        spans.append(
            RoundSpan(round_index=k, t0=t0, t1=t1, leader=leader, straggler=straggler)
        )
        prev_t1 = t1
    return spans


def _component_signals(
    series_list: Sequence[TimeSeries], t0: float, t1: float
) -> Dict[str, float]:
    """Window means of one component's contention signals."""
    signals: Dict[str, float] = {}
    for s in series_list:
        suffix = s.name.rsplit(".", 1)[-1]
        if suffix not in ("util", "queue", "depth", "backlog", "paused"):
            continue
        key = "queue" if suffix in ("depth", "backlog") else suffix
        stats = s.stats(t0, t1)
        if stats is None:
            # No sample landed inside a short round: carry the last
            # value observed before the window closed, if any.
            last = s.last_at_or_before(t1)
            if last is None:
                continue
            mean = last
        else:
            mean = stats["mean"]
        signals[key] = max(signals.get(key, 0.0), mean)
    return signals


def _score(signals: Dict[str, float]) -> float:
    util = min(signals.get("util", 0.0), 1.0)
    queue = max(signals.get("queue", 0.0), 0.0)
    paused = min(signals.get("paused", 0.0), 1.0)
    return max(util, queue / (queue + 1.0), paused)


def attribute_hotspots(
    telemetry: Telemetry,
    spans: Sequence[RoundSpan],
    *,
    barrier_seq: Optional[int] = None,
) -> HotspotReport:
    """Score every telemetry component inside each round span."""
    components = telemetry.components()
    rounds: List[RoundHotspot] = []
    totals: Dict[str, float] = {}
    for span in spans:
        best: Optional[RoundHotspot] = None
        best_key: Tuple[float, float, str] = (-1.0, -1.0, "")
        for comp, series_list in components.items():
            signals = _component_signals(series_list, span.t0, span.t1)
            if not signals:
                continue
            score = _score(signals)
            # Tie-break on raw queue depth, then (inverted) name so the
            # winner is deterministic across runs and dict orders.
            key = (score, signals.get("queue", 0.0), comp)
            if best is None or key > best_key:
                best = RoundHotspot(span=span, component=comp, score=score, evidence=signals)
                best_key = key
        if best is not None:
            rounds.append(best)
            totals[best.component] = (
                totals.get(best.component, 0.0) + best.score * span.duration_us
            )
    ranking = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
    return HotspotReport(rounds=rounds, ranking=ranking, barrier_seq=barrier_seq)


def run_telemetry_barrier(
    num_nodes: int,
    *,
    algorithm: str = "dissemination",
    sample_us: float = 2.0,
    repetitions: int = 1,
    config=None,
    max_events: int = 20_000_000,
):
    """Build a traced + sampled cluster, run barriers, attribute hotspots.

    Returns ``(cluster, report)``; the cluster is kept alive so callers
    can export ``cluster.telemetry`` series or the Chrome trace.
    """
    from repro.cluster.builder import ClusterConfig, build_cluster
    from repro.cluster.runner import run_on_group
    from repro.core.barrier import barrier

    if config is None:
        config = ClusterConfig(num_nodes=num_nodes)
    config = config.with_(
        num_nodes=num_nodes,
        trace=True,
        telemetry=True,
        telemetry_sample_us=sample_us,
    )
    cluster = build_cluster(config)

    def program(ctx):
        for _ in range(repetitions):
            yield from barrier(ctx.port, ctx.group, ctx.rank, algorithm=algorithm)

    run_on_group(cluster, program, max_events=max_events)
    spans = barrier_round_spans(cluster.tracer.events)
    report = attribute_hotspots(cluster.telemetry, spans)
    return cluster, report
