"""The paper's analytic performance model (Section 2.2, Equations 1-3).

Equation 1 (host-based)::

    T_host = log2(N) * (Send + SDMA + Network + Recv + RDMA + HRecv)

Equation 2 (NIC-based)::

    T_nic = Send + log2(N) * (Network + Recv) + RDMA + HRecv

Equation 3: factor of improvement = T_host / T_nic.

:func:`derive_model_params` computes the six terms from the simulator's
cost tables, so the closed-form model and the discrete-event simulation
are two independent evaluations of the same parameters -- the Figure 2
validation bench checks they agree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.host.cpu import HostParams
from repro.network.fabric import NetworkParams
from repro.network.packet import HEADER_BYTES
from repro.nic.lanai import LanaiModel
from repro.nic.nic import NicParams


@dataclass(frozen=True)
class ModelParams:
    """The six timing-diagram terms of Figure 2 (microseconds)."""

    send: float     #: host initiates send -> NIC detects it
    sdma: float     #: NIC moves message host -> NIC transmit buffer
    network: float  #: transmit + wormhole transit (head latency)
    recv: float     #: NIC receive processing
    rdma: float     #: NIC moves message NIC -> host (+ event)
    hrecv: float    #: host processes the delivered message
    #: Extra NIC processing per barrier step of the *NIC-based* barrier
    #: (record check/advance + next-packet preparation); adds to the
    #: per-step term of Equation 2 and to its fixed part once.
    nic_barrier_step_overhead: float = 0.0
    nic_barrier_fixed_overhead: float = 0.0

    @property
    def host_step(self) -> float:
        """One host-based barrier step (one full message path)."""
        return self.send + self.sdma + self.network + self.recv + self.rdma + self.hrecv

    @property
    def nic_step(self) -> float:
        """One NIC-based barrier step (NIC turns the message around)."""
        return self.network + self.recv + self.nic_barrier_step_overhead


class BarrierModel:
    """Evaluate Equations 1-3 for a parameter set."""

    def __init__(self, params: ModelParams) -> None:
        self.params = params

    @staticmethod
    def steps(num_nodes: int) -> float:
        if num_nodes < 1:
            raise ValueError("need at least one node")
        return math.log2(num_nodes)

    def t_host(self, num_nodes: int) -> float:
        """Equation 1."""
        return self.steps(num_nodes) * self.params.host_step

    def t_nic(self, num_nodes: int) -> float:
        """Equation 2 (plus the barrier-extension firmware overheads)."""
        p = self.params
        return (
            p.send
            + self.steps(num_nodes) * self.nic_step(num_nodes)
            + p.rdma
            + p.hrecv
            + p.nic_barrier_fixed_overhead
        )

    def nic_step(self, num_nodes: int) -> float:  # noqa: ARG002 - symmetry
        """Per-step cost of the NIC-based barrier (size-independent)."""
        return self.params.nic_step

    def improvement(self, num_nodes: int) -> float:
        """Equation 3."""
        return self.t_host(num_nodes) / self.t_nic(num_nodes)


def derive_model_params(
    lanai: LanaiModel,
    host: HostParams,
    nic: NicParams,
    net: NetworkParams,
    message_bytes: int = 8,
) -> ModelParams:
    """Compute the Figure 2 terms from the simulator's cost tables.

    This is the bridge between the analytic model and the simulator: both
    are parameterized by the same LANai cycle table, host costs and
    physical-layer constants.
    """
    t = lanai.time
    wire_bytes = HEADER_BYTES + message_bytes
    pci = nic.pci_setup_us

    send = host.effective_send_cost_us + t("poll_detect")
    sdma = (
        t("token_process")
        + t("dma_setup")
        + pci
        + message_bytes / nic.pci_bandwidth_mbps
        + t("packet_prep")
        + t("send_queue_manage")
    )
    network = (
        t("send_dispatch")
        + wire_bytes / net.bandwidth_mbps
        + net.routing_delay_us
        + 2 * net.propagation_us
        + wire_bytes / net.bandwidth_mbps  # second hop serialization
    )
    recv = t("recv_packet")
    rdma = (
        t("rdma_process")
        + pci
        + message_bytes / nic.pci_bandwidth_mbps
        + t("post_event")
        + pci
        + 16.0 / nic.pci_bandwidth_mbps  # the event DMA
    )
    hrecv = host.poll_delay_us + host.effective_recv_cost_us

    # The NIC-based barrier replaces the host turnaround with firmware:
    # on reception the RDMA machine checks + advances the token, the SDMA
    # machine prepares the next packet and re-checks the record.
    step_overhead = (
        t("barrier_check")
        + t("barrier_advance")
        + t("barrier_packet_prep")
        + t("barrier_check")
    )
    fixed_overhead = t("barrier_initiate") + t("barrier_complete")
    return ModelParams(
        send=send,
        sdma=sdma,
        network=network,
        recv=recv,
        rdma=rdma,
        hrecv=hrecv,
        nic_barrier_step_overhead=step_overhead,
        nic_barrier_fixed_overhead=fixed_overhead,
    )
