"""Cluster assembly and application running."""

from repro.cluster.builder import Cluster, ClusterConfig, build_cluster
from repro.cluster.runner import run_on_group, spawn_group

__all__ = [
    "Cluster",
    "ClusterConfig",
    "build_cluster",
    "run_on_group",
    "spawn_group",
]
