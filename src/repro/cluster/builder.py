"""Build a simulated Myrinet/GM cluster.

``build_cluster(ClusterConfig(num_nodes=16))`` reproduces the paper's
testbed: N nodes on one crossbar switch, each with one LANai NIC and a
dual-CPU host.  Everything is a parameter so the benches can sweep NIC
generation, host overhead, reliability mode and topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, List, Optional

from repro.host.cpu import HostParams
from repro.host.node import Node
from repro.network.fabric import Network, NetworkParams
from repro.network.topology import (
    Topology,
    multi_switch_topology,
    single_switch_topology,
)
from repro.nic.lanai import LANAI_4_3, LanaiModel
from repro.nic.nic import Nic, NicParams
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.rng import SimRng
from repro.sim.tracing import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.inject import FaultController
    from repro.faults.plan import FaultPlan


@dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to assemble a cluster."""

    num_nodes: int = 8
    lanai_model: LanaiModel = LANAI_4_3
    host_params: HostParams = field(default_factory=HostParams)
    nic_params: NicParams = field(default_factory=NicParams)
    net_params: NetworkParams = field(default_factory=NetworkParams)
    #: Explicit topology; default = one switch if the nodes fit a 16-port
    #: crossbar (the paper's testbed), else a 16-port switch tree.
    topology: Optional[Topology] = None
    seed: int = 0
    trace: bool = False
    #: Build the simulation with a live metrics registry (see
    #: :mod:`repro.sim.metrics`); off by default for speed.
    metrics: bool = False
    #: Enable the per-callback-owner wall-clock profiler in the engine.
    profile: bool = False
    #: Sim-time sampled telemetry (see :mod:`repro.telemetry`): every
    #: component registers pull probes and a low-priority tick snapshots
    #: them into ring-buffered time series.  Off by default (null
    #: object, same <5% bar as ``metrics``).
    telemetry: bool = False
    #: Sampling period in simulated microseconds when telemetry is on.
    telemetry_sample_us: float = 10.0
    #: Deterministic fault injection (see :mod:`repro.faults`).  None (the
    #: default) wires nothing at all -- the build is bit-identical to one
    #: from before the fault subsystem existed.
    fault_plan: Optional["FaultPlan"] = None

    def with_(self, **changes) -> "ClusterConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **changes)

    def make_topology(self) -> Topology:
        """The explicit topology, or the testbed default for the size."""
        if self.topology is not None:
            return self.topology
        if self.num_nodes <= 16:
            return single_switch_topology(self.num_nodes)
        return multi_switch_topology(self.num_nodes, switch_radix=16)


class Cluster:
    """A live simulated cluster."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.sim = Simulator(
            metrics_enabled=config.metrics,
            profile=config.profile,
            telemetry_enabled=config.telemetry,
            telemetry_sample_us=config.telemetry_sample_us,
        )
        self.rng = SimRng(config.seed)
        self.tracer = Tracer(self.sim, enabled=config.trace)
        topology = config.make_topology()
        self.network = Network(
            self.sim, topology, config.net_params, tracer=self.tracer
        )
        self.nodes: List[Node] = []
        for node_id in range(config.num_nodes):
            nic = Nic(
                self.sim,
                node_id,
                config.lanai_model,
                self.network,
                params=config.nic_params,
                tracer=self.tracer,
            )
            self.nodes.append(
                Node(self.sim, node_id, nic, host_params=config.host_params)
            )
        #: Live fault controller when a plan was configured, else None.
        self.faults: Optional["FaultController"] = None
        if config.fault_plan is not None:
            from repro.faults.inject import install_fault_plan

            self.faults = install_fault_plan(self, config.fault_plan)

    # ------------------------------------------------------------------
    def node(self, node_id: int) -> Node:
        """The node with the given id."""
        return self.nodes[node_id]

    def open_port(self, node_id: int, port_id: Optional[int] = None):
        """Open a GM port on a node (host-synchronous convenience)."""
        return self.nodes[node_id].driver.open_port(port_id)

    def spawn(self, generator, name: str = "") -> Process:
        """Run a host application generator as a simulation process."""
        return Process(self.sim, generator, name=name)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the simulation (see :meth:`repro.sim.engine.Simulator.run`).

        Any exception escaping the event loop gets the flight recorder's
        snapshot attached as ``exc.flight_records`` (unless something
        closer to the failure, like the NIC alarm path, already did), so
        whoever catches it -- a campaign worker, a test, a CLI -- holds
        the black box of the simulation's final moments.
        """
        # Re-arm the telemetry tick (no-op when disabled or already
        # armed): the sampler goes dormant at quiescence so the event
        # loop can drain, and this brings it back for the next batch of
        # work.
        self.sim.telemetry.start()
        try:
            return self.sim.run(until=until, max_events=max_events)
        except Exception as exc:
            if getattr(exc, "flight_records", None) is None:
                try:
                    exc.flight_records = self.tracer.flight.snapshot()
                except AttributeError:  # exception type forbids attrs
                    pass
            raise

    def shutdown(self) -> None:
        """Kill the firmware processes so the event heap can drain."""
        for node in self.nodes:
            node.nic.shutdown()

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self.sim.now

    @property
    def metrics(self):
        """The simulation metrics registry (null when not enabled)."""
        return self.sim.metrics

    @property
    def telemetry(self):
        """The sim-time telemetry sampler (null when not enabled)."""
        return self.sim.telemetry


def build_cluster(config: Optional[ClusterConfig] = None, **overrides) -> Cluster:
    """Assemble a cluster from a config (or keyword overrides)."""
    if config is None:
        config = ClusterConfig(**overrides)
    elif overrides:
        config = config.with_(**overrides)
    return Cluster(config)
