"""Run one program per barrier participant.

A *program* is a generator function with signature
``program(ctx, **kwargs)`` where ``ctx`` is a :class:`RankContext` binding
the participant's port, rank and group.  ``spawn_group`` opens one port
per endpoint and spawns the programs; ``run_on_group`` additionally runs
the simulation to completion and returns the program results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.cluster.builder import Cluster
from repro.gm.api import GmPort
from repro.sim.process import Process

Endpoint = Tuple[int, int]


@dataclass
class RankContext:
    """What a program sees: its port and its place in the group."""

    cluster: Cluster
    port: GmPort
    rank: int
    group: Tuple[Endpoint, ...]

    @property
    def sim(self):
        """The cluster's simulator."""
        return self.cluster.sim

    @property
    def node(self):
        """The node this rank's port lives on."""
        return self.port.node

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self.cluster.sim.now


def default_group(cluster: Cluster, num_ranks: Optional[int] = None, port_id: int = 2) -> List[Endpoint]:
    """One endpoint per node on the given port id (the common layout)."""
    n = num_ranks if num_ranks is not None else len(cluster.nodes)
    if n > len(cluster.nodes):
        raise ValueError(f"{n} ranks > {len(cluster.nodes)} nodes")
    return [(node_id, port_id) for node_id in range(n)]


def spawn_group(
    cluster: Cluster,
    program: Callable,
    group: Optional[Sequence[Endpoint]] = None,
    ports: Optional[Sequence[GmPort]] = None,
    **kwargs,
) -> List[Process]:
    """Open ports (unless given) and spawn ``program`` once per rank."""
    if group is None:
        group = default_group(cluster)
    group = tuple(group)
    if ports is None:
        ports = [cluster.open_port(node_id, port_id) for node_id, port_id in group]
    procs = []
    for rank, port in enumerate(ports):
        ctx = RankContext(cluster=cluster, port=port, rank=rank, group=group)
        proc = cluster.spawn(program(ctx, **kwargs), name=f"rank{rank}")
        port.node.programs.append(proc)
        procs.append(proc)
    return procs


def run_on_group(
    cluster: Cluster,
    program: Callable,
    group: Optional[Sequence[Endpoint]] = None,
    max_events: Optional[int] = None,
    **kwargs,
) -> List:
    """spawn_group + run to completion + collect program return values."""
    procs = spawn_group(cluster, program, group=group, **kwargs)
    cluster.run(max_events=max_events)
    unfinished = [p.name for p in procs if p.alive]
    if unfinished:
        raise RuntimeError(
            f"programs did not finish: {unfinished} "
            f"(simulated t={cluster.sim.now:.1f}us; likely deadlock)"
        )
    return [p.result for p in procs]
